// Vertex orderings for hub labeling (paper Section 2.2).
//
// The paper adopts degree-based ordering: vertices sorted by descending
// degree are ranked highest because they are expected to lie on many
// shortest paths, which lets later hub-pushing searches prune early. The
// ordering is *frozen* at construction time and kept across updates
// (Section 6 discusses why re-ordering online is an open problem).

#ifndef DSPC_GRAPH_ORDERING_H_
#define DSPC_GRAPH_ORDERING_H_

#include <vector>

#include "dspc/common/types.h"
#include "dspc/graph/digraph.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/weighted_graph.h"

namespace dspc {

/// A frozen total order over vertices. rank_of[v] is the rank of vertex v
/// (0 = highest); vertex_of[r] is the vertex with rank r. The two arrays
/// are inverse permutations of each other.
struct VertexOrdering {
  std::vector<Rank> rank_of;
  std::vector<Vertex> vertex_of;

  size_t size() const { return rank_of.size(); }

  /// True iff u outranks or equals v (the paper's `u <= v`).
  bool OutranksOrEqual(Vertex u, Vertex v) const {
    return rank_of[u] <= rank_of[v];
  }

  /// Extends the order with one new (lowest-ranked) vertex; used when a
  /// vertex is inserted into a graph with a frozen ordering.
  void Append();

  /// True iff rank_of and vertex_of are mutually inverse permutations.
  bool IsValid() const;
};

/// Which ordering heuristic to use. Degree is the paper's choice; the
/// others exist for the ordering ablation bench.
enum class OrderingStrategy {
  kDegree,        ///< descending degree, ties by smaller id (paper default)
  kRandom,        ///< uniformly random permutation (ablation baseline)
  kDegreeJitter,  ///< degree with random tie-breaking
  kIdentity,      ///< rank == vertex id (worst-case-ish, for tests)
};

/// Options for BuildOrdering.
struct OrderingOptions {
  OrderingStrategy strategy = OrderingStrategy::kDegree;
  uint64_t seed = 1;  ///< used by the randomized strategies
};

/// Builds an ordering for an undirected graph.
VertexOrdering BuildOrdering(const Graph& graph,
                             const OrderingOptions& options = {});

/// Builds an ordering for a directed graph; degree = in + out degree.
VertexOrdering BuildOrdering(const Digraph& graph,
                             const OrderingOptions& options = {});

/// Builds an ordering for a weighted graph (degree ignores weights).
VertexOrdering BuildOrdering(const WeightedGraph& graph,
                             const OrderingOptions& options = {});

/// Builds an ordering directly from per-vertex degrees (shared impl).
VertexOrdering BuildOrderingFromDegrees(const std::vector<size_t>& degrees,
                                        const OrderingOptions& options);

}  // namespace dspc

#endif  // DSPC_GRAPH_ORDERING_H_
