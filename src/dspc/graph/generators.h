// Synthetic graph generators.
//
// The paper evaluates on public SNAP/Konect/LAW graphs; this environment is
// offline, so the benchmark suite substitutes synthetic graphs with matched
// density and degree skew (DESIGN.md Section 4). All generators are
// deterministic given a seed and produce simple undirected graphs.

#ifndef DSPC_GRAPH_GENERATORS_H_
#define DSPC_GRAPH_GENERATORS_H_

#include <cstdint>

#include "dspc/graph/digraph.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/weighted_graph.h"

namespace dspc {

/// Erdős–Rényi G(n, m): m distinct uniform random edges.
Graph GenerateErdosRenyi(size_t n, size_t m, uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportionally to degree. Produces the
/// heavy-tailed degree distributions of social/collaboration networks.
Graph GenerateBarabasiAlbert(size_t n, size_t attach, uint64_t seed);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side and rewiring probability `beta`.
Graph GenerateWattsStrogatz(size_t n, size_t k, double beta, uint64_t seed);

/// R-MAT (recursive matrix) power-law generator with the standard
/// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) quadrant probabilities, as used
/// for web-graph stand-ins. `scale` gives n = 2^scale; `m` target edges
/// (self-loops/duplicates dropped, so the result has <= m edges).
Graph GenerateRmat(size_t scale, size_t m, uint64_t seed);

/// 2D grid graph of `rows` x `cols` vertices with 4-neighborhood edges —
/// the road-network-like substrate for the weighted extension.
Graph GenerateGrid(size_t rows, size_t cols);

/// Path graph 0-1-2-...-(n-1).
Graph GeneratePath(size_t n);

/// Cycle graph on n >= 3 vertices.
Graph GenerateCycle(size_t n);

/// Star graph: vertex 0 connected to 1..n-1.
Graph GenerateStar(size_t n);

/// Complete graph K_n.
Graph GenerateComplete(size_t n);

/// Complete bipartite graph K_{a,b}: parts {0..a-1} and {a..a+b-1}.
Graph GenerateCompleteBipartite(size_t a, size_t b);

/// Random directed graph: `m` distinct uniform arcs (for Appendix C.1).
Digraph GenerateRandomDigraph(size_t n, size_t m, uint64_t seed);

/// Directed R-MAT (keeps arc direction).
Digraph GenerateRmatDigraph(size_t scale, size_t m, uint64_t seed);

/// Assigns uniform random weights in [min_w, max_w] to an unweighted graph
/// (for Appendix C.2).
WeightedGraph AttachRandomWeights(const Graph& graph, Weight min_w,
                                  Weight max_w, uint64_t seed);

}  // namespace dspc

#endif  // DSPC_GRAPH_GENERATORS_H_
