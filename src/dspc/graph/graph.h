// Dynamic undirected, unweighted graph: the substrate for the SPC-Index and
// its maintenance algorithms (paper Section 2.1).
//
// Vertices are dense ids in [0, n). Adjacency lists are kept sorted, giving
// O(log deg) edge lookup and O(deg) insert/delete — edges change one at a
// time in the dynamic workloads, so this is the right trade-off (bulk loads
// go through the constructor which sorts once).

#ifndef DSPC_GRAPH_GRAPH_H_
#define DSPC_GRAPH_GRAPH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "dspc/common/types.h"

namespace dspc {

/// An undirected edge as an (unordered) vertex pair.
struct Edge {
  Vertex u;
  Vertex v;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Dynamic undirected, unweighted graph. Self-loops and parallel edges are
/// rejected (shortest-path counting is defined on simple graphs).
class Graph {
 public:
  Graph() = default;

  /// Creates a graph with `n` isolated vertices.
  explicit Graph(size_t n) : adj_(n) {}

  /// Creates a graph with `n` vertices and the given edges. Duplicate edges
  /// and self-loops are dropped. O(m log m).
  Graph(size_t n, const std::vector<Edge>& edges);

  /// Number of vertices.
  size_t NumVertices() const { return adj_.size(); }

  /// Number of (undirected) edges.
  size_t NumEdges() const { return num_edges_; }

  /// Degree of `v`.
  size_t Degree(Vertex v) const { return adj_[v].size(); }

  /// Sorted neighbors of `v`.
  const std::vector<Vertex>& Neighbors(Vertex v) const { return adj_[v]; }

  /// True iff (u, v) is an edge. O(log deg).
  bool HasEdge(Vertex u, Vertex v) const;

  /// Adds edge (u, v). Returns false (and leaves the graph unchanged) for
  /// self-loops, out-of-range endpoints, or already-present edges.
  bool AddEdge(Vertex u, Vertex v);

  /// Removes edge (u, v). Returns false if the edge is not present.
  bool RemoveEdge(Vertex u, Vertex v);

  /// Appends an isolated vertex and returns its id.
  Vertex AddVertex();

  /// Removes all edges incident to `v` (the vertex id itself stays valid,
  /// as the paper models vertex deletion as deleting all incident edges).
  /// Returns the removed edges.
  std::vector<Edge> IsolateVertex(Vertex v);

  /// All edges, each reported once with u < v, in ascending order.
  std::vector<Edge> Edges() const;

  /// True iff `v` is a valid vertex id.
  bool IsValidVertex(Vertex v) const { return v < adj_.size(); }

 private:
  std::vector<std::vector<Vertex>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace dspc

#endif  // DSPC_GRAPH_GRAPH_H_
