#include "dspc/graph/ordering.h"

#include <algorithm>
#include <numeric>

#include "dspc/common/rng.h"

namespace dspc {

void VertexOrdering::Append() {
  const Rank r = static_cast<Rank>(vertex_of.size());
  rank_of.push_back(r);
  vertex_of.push_back(static_cast<Vertex>(r));
}

bool VertexOrdering::IsValid() const {
  if (rank_of.size() != vertex_of.size()) return false;
  for (Vertex v = 0; v < rank_of.size(); ++v) {
    const Rank r = rank_of[v];
    if (r >= vertex_of.size() || vertex_of[r] != v) return false;
  }
  return true;
}

VertexOrdering BuildOrderingFromDegrees(const std::vector<size_t>& degrees,
                                        const OrderingOptions& options) {
  const size_t n = degrees.size();
  VertexOrdering ordering;
  ordering.vertex_of.resize(n);
  std::iota(ordering.vertex_of.begin(), ordering.vertex_of.end(), 0);

  switch (options.strategy) {
    case OrderingStrategy::kDegree:
      std::stable_sort(ordering.vertex_of.begin(), ordering.vertex_of.end(),
                       [&](Vertex a, Vertex b) {
                         if (degrees[a] != degrees[b]) {
                           return degrees[a] > degrees[b];
                         }
                         return a < b;
                       });
      break;
    case OrderingStrategy::kRandom: {
      Rng rng(options.seed);
      // Fisher-Yates shuffle.
      for (size_t i = n; i > 1; --i) {
        const size_t j = rng.NextBounded(i);
        std::swap(ordering.vertex_of[i - 1], ordering.vertex_of[j]);
      }
      break;
    }
    case OrderingStrategy::kDegreeJitter: {
      Rng rng(options.seed);
      std::vector<uint64_t> tie(n);
      for (auto& t : tie) t = rng.Next();
      std::sort(ordering.vertex_of.begin(), ordering.vertex_of.end(),
                [&](Vertex a, Vertex b) {
                  if (degrees[a] != degrees[b]) return degrees[a] > degrees[b];
                  return tie[a] < tie[b];
                });
      break;
    }
    case OrderingStrategy::kIdentity:
      break;
  }

  ordering.rank_of.resize(n);
  for (Rank r = 0; r < n; ++r) {
    ordering.rank_of[ordering.vertex_of[r]] = r;
  }
  return ordering;
}

VertexOrdering BuildOrdering(const Graph& graph,
                             const OrderingOptions& options) {
  std::vector<size_t> degrees(graph.NumVertices());
  for (Vertex v = 0; v < graph.NumVertices(); ++v) {
    degrees[v] = graph.Degree(v);
  }
  return BuildOrderingFromDegrees(degrees, options);
}

VertexOrdering BuildOrdering(const Digraph& graph,
                             const OrderingOptions& options) {
  std::vector<size_t> degrees(graph.NumVertices());
  for (Vertex v = 0; v < graph.NumVertices(); ++v) {
    degrees[v] = graph.OutDegree(v) + graph.InDegree(v);
  }
  return BuildOrderingFromDegrees(degrees, options);
}

VertexOrdering BuildOrdering(const WeightedGraph& graph,
                             const OrderingOptions& options) {
  std::vector<size_t> degrees(graph.NumVertices());
  for (Vertex v = 0; v < graph.NumVertices(); ++v) {
    degrees[v] = graph.Degree(v);
  }
  return BuildOrderingFromDegrees(degrees, options);
}

}  // namespace dspc
