// Edge-list I/O in the SNAP text format, so the paper's real datasets can
// be dropped in unchanged, plus a compact binary format for fast reload.

#ifndef DSPC_GRAPH_IO_H_
#define DSPC_GRAPH_IO_H_

#include <string>

#include "dspc/common/status.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/weighted_graph.h"

namespace dspc {

/// Parses a SNAP-style edge list: one "u v" pair per line, '#' or '%'
/// comment lines ignored, arbitrary whitespace. Vertex ids may be sparse;
/// they are compacted to [0, n) preserving first-appearance order unless
/// `keep_ids` is set (then n = max id + 1). Directions are ignored — the
/// paper converts all graphs to undirected.
struct EdgeListOptions {
  bool keep_ids = false;
};

/// Loads an undirected graph from a SNAP text edge list.
Status LoadEdgeList(const std::string& path, Graph* out,
                    const EdgeListOptions& options = {});

/// Parses an edge list from an in-memory string (same format).
Status ParseEdgeList(const std::string& text, Graph* out,
                     const EdgeListOptions& options = {});

/// Writes "u v" lines (one per undirected edge, u < v) with a comment
/// header.
Status SaveEdgeList(const Graph& graph, const std::string& path);

/// Binary graph snapshot with CRC framing (see common/binary_io.h).
Status SaveGraphBinary(const Graph& graph, const std::string& path);
Status LoadGraphBinary(const std::string& path, Graph* out);

/// Weighted edge list: "u v w" lines.
Status ParseWeightedEdgeList(const std::string& text, WeightedGraph* out);
Status LoadWeightedEdgeList(const std::string& path, WeightedGraph* out);
Status SaveWeightedEdgeList(const WeightedGraph& graph,
                            const std::string& path);

}  // namespace dspc

#endif  // DSPC_GRAPH_IO_H_
