#include "dspc/graph/update_stream.h"

#include <algorithm>
#include <unordered_set>

#include "dspc/common/rng.h"

namespace dspc {

namespace {

uint64_t PairKey(Vertex u, Vertex v) {
  const Vertex lo = std::min(u, v);
  const Vertex hi = std::max(u, v);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

}  // namespace

std::vector<Edge> SampleNonEdges(const Graph& graph, size_t count,
                                 uint64_t seed) {
  Rng rng(seed);
  const size_t n = graph.NumVertices();
  std::vector<Edge> result;
  if (n < 2) return result;
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  const uint64_t free_slots =
      max_edges > graph.NumEdges() ? max_edges - graph.NumEdges() : 0;
  count = std::min<uint64_t>(count, free_slots);
  std::unordered_set<uint64_t> seen;
  size_t guard = 0;
  const size_t max_guard = 100 * count + 10000;
  while (result.size() < count && guard < max_guard) {
    ++guard;
    const auto u = static_cast<Vertex>(rng.NextBounded(n));
    const auto v = static_cast<Vertex>(rng.NextBounded(n));
    if (u == v || graph.HasEdge(u, v)) continue;
    if (seen.insert(PairKey(u, v)).second) result.push_back(Edge{u, v});
  }
  return result;
}

std::vector<Edge> SampleEdges(const Graph& graph, size_t count,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges = graph.Edges();
  count = std::min(count, edges.size());
  // Partial Fisher-Yates: shuffle the first `count` positions.
  for (size_t i = 0; i < count; ++i) {
    const size_t j = i + rng.NextBounded(edges.size() - i);
    std::swap(edges[i], edges[j]);
  }
  edges.resize(count);
  return edges;
}

std::vector<Update> MakeHybridStream(const Graph& graph, size_t insertions,
                                     size_t deletions, uint64_t seed) {
  const std::vector<Edge> ins = SampleNonEdges(graph, insertions, seed);
  const std::vector<Edge> del = SampleEdges(graph, deletions, seed ^ 0x5D5Cu);
  std::vector<Update> stream;
  stream.reserve(ins.size() + del.size());
  for (const Edge& e : ins) stream.push_back(Update::Insert(e.u, e.v));
  for (const Edge& e : del) stream.push_back(Update::Delete(e.u, e.v));
  // Uniform interleave via Fisher-Yates.
  Rng rng(seed ^ 0xA11CEu);
  for (size_t i = stream.size(); i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap(stream[i - 1], stream[j]);
  }
  return stream;
}

namespace {

std::vector<SkewedEdgeSample> Stratify(std::vector<SkewedEdgeSample> pool,
                                       size_t count) {
  std::sort(pool.begin(), pool.end(),
            [](const SkewedEdgeSample& a, const SkewedEdgeSample& b) {
              return a.degree_product < b.degree_product;
            });
  if (pool.size() <= count) return pool;
  std::vector<SkewedEdgeSample> out;
  out.reserve(count);
  // Even stride over the sorted pool keeps the full skew spectrum.
  const double step = static_cast<double>(pool.size()) / count;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(pool[static_cast<size_t>(i * step)]);
  }
  return out;
}

}  // namespace

std::vector<SkewedEdgeSample> SampleSkewedNonEdges(const Graph& graph,
                                                   size_t count,
                                                   uint64_t seed) {
  // Oversample, then stratify by degree product.
  const std::vector<Edge> pool_edges =
      SampleNonEdges(graph, count * 8 + 64, seed);
  std::vector<SkewedEdgeSample> pool;
  pool.reserve(pool_edges.size());
  for (const Edge& e : pool_edges) {
    pool.push_back(SkewedEdgeSample{
        e, static_cast<uint64_t>(graph.Degree(e.u)) * graph.Degree(e.v)});
  }
  return Stratify(std::move(pool), count);
}

std::vector<SkewedEdgeSample> SampleSkewedEdges(const Graph& graph,
                                                size_t count, uint64_t seed) {
  const std::vector<Edge> pool_edges = SampleEdges(graph, count * 8 + 64, seed);
  std::vector<SkewedEdgeSample> pool;
  pool.reserve(pool_edges.size());
  for (const Edge& e : pool_edges) {
    pool.push_back(SkewedEdgeSample{
        e, static_cast<uint64_t>(graph.Degree(e.u)) * graph.Degree(e.v)});
  }
  return Stratify(std::move(pool), count);
}

}  // namespace dspc
