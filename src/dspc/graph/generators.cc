#include "dspc/graph/generators.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "dspc/common/rng.h"

namespace dspc {

namespace {

/// Packs an undirected pair (min, max) into a 64-bit set key.
uint64_t PairKey(Vertex u, Vertex v) {
  const Vertex lo = std::min(u, v);
  const Vertex hi = std::max(u, v);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

}  // namespace

Graph GenerateErdosRenyi(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  const uint64_t max_edges = n < 2 ? 0 : static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min<uint64_t>(m, max_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    const auto u = static_cast<Vertex>(rng.NextBounded(n));
    const auto v = static_cast<Vertex>(rng.NextBounded(n));
    if (u == v) continue;
    if (seen.insert(PairKey(u, v)).second) {
      edges.push_back(Edge{u, v});
    }
  }
  return Graph(n, edges);
}

Graph GenerateBarabasiAlbert(size_t n, size_t attach, uint64_t seed) {
  Rng rng(seed);
  if (n == 0) return Graph(0);
  attach = std::max<size_t>(attach, 1);
  // `targets` holds one entry per edge endpoint, so sampling uniformly from
  // it is degree-proportional sampling.
  std::vector<Vertex> endpoints;
  std::vector<Edge> edges;
  const size_t core = std::min(n, attach + 1);
  // Seed clique over the first `core` vertices.
  for (Vertex u = 0; u < core; ++u) {
    for (Vertex v = u + 1; v < core; ++v) {
      edges.push_back(Edge{u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::unordered_set<Vertex> picked;
  for (Vertex v = static_cast<Vertex>(core); v < n; ++v) {
    picked.clear();
    // Degree-proportional selection without replacement.
    size_t guard = 0;
    while (picked.size() < attach && guard < 32 * attach + 64) {
      ++guard;
      const Vertex t = endpoints.empty()
                           ? static_cast<Vertex>(rng.NextBounded(v))
                           : endpoints[rng.NextBounded(endpoints.size())];
      if (t != v) picked.insert(t);
    }
    for (Vertex t : picked) {
      edges.push_back(Edge{v, t});
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return Graph(n, edges);
}

Graph GenerateWattsStrogatz(size_t n, size_t k, double beta, uint64_t seed) {
  Rng rng(seed);
  if (n < 3) return Graph(n);
  k = std::max<size_t>(1, std::min(k, (n - 1) / 2));
  std::unordered_set<uint64_t> seen;
  std::vector<Edge> edges;
  // Ring lattice.
  for (Vertex u = 0; u < n; ++u) {
    for (size_t j = 1; j <= k; ++j) {
      const auto v = static_cast<Vertex>((u + j) % n);
      if (seen.insert(PairKey(u, v)).second) edges.push_back(Edge{u, v});
    }
  }
  // Rewire each lattice edge with probability beta.
  for (Edge& e : edges) {
    if (!rng.NextBool(beta)) continue;
    for (int tries = 0; tries < 16; ++tries) {
      const auto w = static_cast<Vertex>(rng.NextBounded(n));
      if (w == e.u || w == e.v) continue;
      const uint64_t key = PairKey(e.u, w);
      if (seen.count(key) != 0) continue;
      seen.erase(PairKey(e.u, e.v));
      seen.insert(key);
      e.v = w;
      break;
    }
  }
  return Graph(n, edges);
}

Graph GenerateRmat(size_t scale, size_t m, uint64_t seed) {
  Rng rng(seed);
  const size_t n = size_t{1} << scale;
  // Standard Graph500-style quadrant probabilities.
  const double a = 0.57, b = 0.19, c = 0.19;
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  size_t attempts = 0;
  const size_t max_attempts = 20 * m + 1000;
  while (edges.size() < m && attempts < max_attempts) {
    ++attempts;
    Vertex u = 0;
    Vertex v = 0;
    for (size_t bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (seen.insert(PairKey(u, v)).second) edges.push_back(Edge{u, v});
  }
  return Graph(n, edges);
}

Graph GenerateGrid(size_t rows, size_t cols) {
  std::vector<Edge> edges;
  const size_t n = rows * cols;
  edges.reserve(2 * n);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t col = 0; col < cols; ++col) {
      const auto id = static_cast<Vertex>(r * cols + col);
      if (col + 1 < cols) edges.push_back(Edge{id, id + 1});
      if (r + 1 < rows) {
        edges.push_back(Edge{id, static_cast<Vertex>(id + cols)});
      }
    }
  }
  return Graph(n, edges);
}

Graph GeneratePath(size_t n) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < n; ++v) edges.push_back(Edge{v, v + 1});
  return Graph(n, edges);
}

Graph GenerateCycle(size_t n) {
  Graph g = GeneratePath(n);
  if (n >= 3) g.AddEdge(static_cast<Vertex>(n - 1), 0);
  return g;
}

Graph GenerateStar(size_t n) {
  std::vector<Edge> edges;
  for (Vertex v = 1; v < n; ++v) edges.push_back(Edge{0, v});
  return Graph(n, edges);
}

Graph GenerateComplete(size_t n) {
  std::vector<Edge> edges;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) edges.push_back(Edge{u, v});
  }
  return Graph(n, edges);
}

Graph GenerateCompleteBipartite(size_t a, size_t b) {
  std::vector<Edge> edges;
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex v = 0; v < b; ++v) {
      edges.push_back(Edge{u, static_cast<Vertex>(a + v)});
    }
  }
  return Graph(a + b, edges);
}

Digraph GenerateRandomDigraph(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  const uint64_t max_arcs = n < 2 ? 0 : static_cast<uint64_t>(n) * (n - 1);
  m = std::min<uint64_t>(m, max_arcs);
  std::unordered_set<uint64_t> seen;
  std::vector<Edge> arcs;
  while (arcs.size() < m) {
    const auto u = static_cast<Vertex>(rng.NextBounded(n));
    const auto v = static_cast<Vertex>(rng.NextBounded(n));
    if (u == v) continue;
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) arcs.push_back(Edge{u, v});
  }
  return Digraph(n, arcs);
}

Digraph GenerateRmatDigraph(size_t scale, size_t m, uint64_t seed) {
  Rng rng(seed);
  const size_t n = size_t{1} << scale;
  const double a = 0.57, b = 0.19, c = 0.19;
  std::unordered_set<uint64_t> seen;
  std::vector<Edge> arcs;
  size_t attempts = 0;
  const size_t max_attempts = 20 * m + 1000;
  while (arcs.size() < m && attempts < max_attempts) {
    ++attempts;
    Vertex u = 0;
    Vertex v = 0;
    for (size_t bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) arcs.push_back(Edge{u, v});
  }
  return Digraph(n, arcs);
}

WeightedGraph AttachRandomWeights(const Graph& graph, Weight min_w,
                                  Weight max_w, uint64_t seed) {
  Rng rng(seed);
  if (min_w == 0) min_w = 1;
  if (max_w < min_w) max_w = min_w;
  WeightedGraph wg(graph.NumVertices());
  for (const Edge& e : graph.Edges()) {
    const auto w = static_cast<Weight>(rng.NextInRange(min_w, max_w));
    wg.AddEdge(e.u, e.v, w);
  }
  return wg;
}

}  // namespace dspc
