// Update-stream workload generators for the dynamic experiments:
//   - random edge insertions (paper §4.1.1: "1,000 random edges are
//     inserted into each graph")
//   - random edge deletions ("randomly select k edges")
//   - hybrid streams (Figure 10: 100 insertions + 10 deletions)
//   - degree-skewed edge selection (Figure 11: varying deg(u)*deg(v))

#ifndef DSPC_GRAPH_UPDATE_STREAM_H_
#define DSPC_GRAPH_UPDATE_STREAM_H_

#include <cstdint>
#include <vector>

#include "dspc/graph/graph.h"

namespace dspc {

/// One topological update.
struct Update {
  enum class Kind : unsigned char { kInsert, kDelete };
  Kind kind;
  Edge edge;

  static Update Insert(Vertex u, Vertex v) {
    return Update{Kind::kInsert, Edge{u, v}};
  }
  static Update Delete(Vertex u, Vertex v) {
    return Update{Kind::kDelete, Edge{u, v}};
  }

  friend bool operator==(const Update&, const Update&) = default;
};

/// Samples `count` distinct non-edges of `graph` — candidate insertions.
/// Fewer may be returned if the graph is near-complete.
std::vector<Edge> SampleNonEdges(const Graph& graph, size_t count,
                                 uint64_t seed);

/// Samples `count` distinct existing edges of `graph` — candidate
/// deletions. Fewer may be returned than requested if m < count.
std::vector<Edge> SampleEdges(const Graph& graph, size_t count, uint64_t seed);

/// Builds a hybrid stream of `insertions` inserts and `deletions` deletes,
/// interleaved uniformly at random (Figure 10 workload). Inserted edges are
/// fresh non-edges; deleted edges are sampled from the original edge set
/// and are never edges that the stream itself inserted.
std::vector<Update> MakeHybridStream(const Graph& graph, size_t insertions,
                                     size_t deletions, uint64_t seed);

/// Degree-skew buckets for Figure 11: edges (existing or not) are scored by
/// deg(u)*deg(v) and assigned to logarithmic buckets.
struct SkewedEdgeSample {
  Edge edge;
  uint64_t degree_product;
};

/// Samples `count` non-edges spread across the degree-product spectrum:
/// candidates are drawn, scored by deg(u)*deg(v), sorted, and an evenly
/// strided subset is returned so low- and high-degree edges both appear.
std::vector<SkewedEdgeSample> SampleSkewedNonEdges(const Graph& graph,
                                                   size_t count,
                                                   uint64_t seed);

/// Same stratification over existing edges (for skewed deletions).
std::vector<SkewedEdgeSample> SampleSkewedEdges(const Graph& graph,
                                                size_t count, uint64_t seed);

}  // namespace dspc

#endif  // DSPC_GRAPH_UPDATE_STREAM_H_
