// SpcService: the typed, consistency-aware serving surface over
// DynamicSpcIndex (DESIGN.md §9).
//
// The core engine answers raw Query(s, t) calls with whatever the current
// refresh policy happens to serve; a production caller needs three things
// the raw entry point cannot express:
//
//   admission   Requests are validated before they touch the index —
//               out-of-range vertex ids return Status kInvalidArgument
//               instead of undefined behavior, a min_generation from the
//               future is rejected instead of silently unsatisfiable.
//   freshness   Every read carries ReadOptions{consistency, ...} choosing
//               a point on the freshness/latency lattice:
//                 kFresh             answers reflect every update admitted
//                                    before the read; may ride the mutable
//                                    index (and thus briefly wait for an
//                                    in-flight writer).
//                 kSnapshot          answers come from the pinned published
//                                    snapshot and NEVER block — not on
//                                    writers, not on maintenance. May be
//                                    stale; unservable requests (nothing
//                                    published, snapshot too old for
//                                    min_generation, vertex newer than the
//                                    snapshot) return kUnavailable instead
//                                    of waiting.
//                 kBoundedStaleness  snapshot-served while the snapshot is
//                                    within max_lag generations of the
//                                    index (and >= min_generation);
//                                    otherwise escalates to the live index,
//                                    which always satisfies both bounds.
//   tokens      Every write returns a WriteToken carrying the structural
//               generation it advanced the index to. A later read passes
//               token.generation as ReadOptions::min_generation and is
//               guaranteed to observe that write (read-your-writes) with
//               no global quiescing: the service simply refuses to serve a
//               snapshot older than the token and escalates per the
//               consistency mode. WaitForSnapshot(token) is the explicit
//               barrier for callers that want the *snapshot* to catch up.
//   deadlines   Every read (and WaitForSnapshot) takes an optional
//               timeout. The only edges of the serving surface that can
//               block — a live-index read waiting out a writer, and the
//               snapshot barrier — honor it with timed acquisition and
//               return kDeadlineExceeded instead of blocking past it
//               (DESIGN.md §10). Snapshot-served reads never block and
//               never miss a deadline.
//   reports     Batch writes return one WriteReport per input update —
//               applied (with that update's own stats and generation),
//               no-op, or rejected with a reason — so a caller can tell
//               exactly which updates changed the index instead of
//               receiving one folded stats blob.
//
// Every response is generation-tagged and says where it was served from
// (snapshot vs live index) and how stale that source was at admission —
// and the service aggregates the same signals fleet-wide in a
// ServiceMetrics instance (Metrics(): per-mode query counts, served-from
// distribution, staleness histogram, deadline misses, batch sizes) so an
// operator can check a freshness SLO without sampling responses.
//
// Thread-safety: all methods may be called from any number of threads
// concurrently; reads never see a torn index (they serve immutable
// snapshots or take the engine's shared lock).

#ifndef DSPC_API_SPC_SERVICE_H_
#define DSPC_API_SPC_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dspc/api/service_metrics.h"
#include "dspc/common/status.h"
#include "dspc/common/types.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/pair_cache.h"
#include "dspc/core/update_stats.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/update_stream.h"
#include "dspc/persist/checkpointer.h"
#include "dspc/persist/env.h"
#include "dspc/persist/recovery.h"
#include "dspc/persist/replication.h"
#include "dspc/persist/snapshot_publisher.h"
#include "dspc/persist/wal.h"

namespace dspc {

/// The freshness contract of one read. See the file comment for the full
/// lattice.
///
/// kSnapshot requires a published snapshot to exist: under kBackground
/// one is published eagerly at construction, but under kSync/kManual the
/// first publish happens only when other traffic causes it (a
/// budget-crossing kFresh read under kSync, or an explicit refresh), so
/// a pure-kSnapshot client should call WaitForSnapshot({Generation()})
/// once to warm the serving path — until then kSnapshot reads return
/// kUnavailable.
enum class Consistency : unsigned char {
  kFresh,             ///< reflects all updates admitted before the read
  kSnapshot,          ///< pinned published snapshot; never blocks
  kBoundedStaleness,  ///< snapshot while within max_lag, else live index
};

/// Sentinel for ReadOptions::timeout and WaitForSnapshot: no deadline —
/// block as long as it takes (any negative duration means the same).
inline constexpr std::chrono::nanoseconds kNoTimeout{-1};

/// Per-read options. Aggregate-initializable:
///   service.Query(s, t, {.consistency = Consistency::kSnapshot});
struct ReadOptions {
  Consistency consistency = Consistency::kFresh;

  /// kBoundedStaleness: how many generations the served snapshot may
  /// trail the index. 0 demands a current snapshot (escalating to the
  /// live index whenever the snapshot is at all stale).
  uint64_t max_lag = 0;

  /// Read-your-writes floor: the answer must reflect at least this
  /// structural generation (normally a WriteToken::generation from a
  /// prior update on this service). 0 = no floor.
  uint64_t min_generation = 0;

  /// Worker threads for batch reads (0 = hardware concurrency). Ignored
  /// by single queries.
  unsigned threads = 0;

  /// Per-call deadline, as a timeout relative to admission. Bounds the
  /// only blocking edge a read has: waiting for the live-index lock
  /// behind an in-flight writer (kFresh always; kBoundedStaleness when
  /// it escalates). A read that cannot acquire the lock by the deadline
  /// returns kDeadlineExceeded instead of blocking; 0 degrades to a pure
  /// try-lock (still serves when no writer holds the lock).
  /// Snapshot-served reads never block, so the timeout never fails them.
  /// A timed read also never performs snapshot maintenance: under
  /// RefreshPolicy::kSync it takes the free pin instead of the
  /// budget-charging acquire (whose inline rebuild waits unbounded on
  /// the writer lock), leaving the rebuild to the next untimed read.
  /// kNoTimeout (the default, or any negative value) = no deadline.
  std::chrono::nanoseconds timeout = kNoTimeout;
};

/// Proof of a write's position in the update sequence. Pass
/// token.generation as ReadOptions::min_generation to read your write.
struct WriteToken {
  uint64_t generation = 0;

  /// True when this write is crash-durable at return: it was appended to
  /// the WAL and the append was fsynced (the write joined a group commit
  /// under WalSyncPolicy::kBatch, or every write syncs under
  /// kEveryWrite). Set only when the caller asked via
  /// WriteOptions::durable on a durable service; a plain write on a
  /// durable service is logged but possibly not yet synced, and a write
  /// on a non-durable service never sets it.
  bool durable = false;
};

/// Per-write options (writes were previously option-free; the default
/// keeps their old behavior exactly).
struct WriteOptions {
  /// Block until this write's WAL records are fsynced before returning
  /// (token.durable confirms it). Under kBatch this joins the group
  /// commit — concurrent durable writers share one fsync. Ignored (left
  /// false on the token) when the service was not opened durable.
  bool durable = false;
};

/// Configuration for a durable service (SpcService::Open): where the
/// WAL + checkpoints live and when they are synced. See DESIGN.md §11.
struct DurabilityOptions {
  /// Directory holding MANIFEST, ckpt-*.spc, and wal-*.log. Created if
  /// missing; recovered from if not empty.
  std::string dir;

  /// When WAL appends are fsynced (persist/wal.h). kBatch (default)
  /// group-commits on a flusher thread; kEveryWrite syncs inside every
  /// write; kNone leaves it to the OS (and to WriteOptions::durable,
  /// which forces a sync even under kNone).
  WalSyncPolicy sync = WalSyncPolicy::kBatch;

  /// Group-commit flush interval under kBatch.
  std::chrono::microseconds flush_interval{2000};

  /// Background checkpoint triggers: publish a new checkpoint (and
  /// rotate + GC the WAL) once the current segment holds this many bytes
  /// or records, whichever trips first. 0 disables that trigger;
  /// both 0 means checkpoints happen only via Checkpoint().
  uint64_t checkpoint_wal_bytes = uint64_t{64} << 20;
  uint64_t checkpoint_wal_records = 100000;

  /// Filesystem seam; nullptr = FileSystem::Default(). Tests inject a
  /// FaultInjectingEnv here. Must outlive the service.
  FileSystem* fs = nullptr;
};

/// Which serving path answered a read.
enum class ServedFrom : unsigned char {
  kSnapshot,   ///< immutable published FlatSpcIndex snapshot
  kLiveIndex,  ///< mutable index under the engine's shared lock
};

/// One answered query plus its serving metadata.
struct QueryResponse {
  SpcResult result;

  /// Structural generation the answer reflects. Exact for both serving
  /// paths: snapshot-served answers carry the pin's generation, and
  /// live-served answers re-read the generation under the engine's
  /// shared lock (so a write that completed while the read waited for
  /// the lock is reflected in both the answer and this field).
  uint64_t generation = 0;

  /// Generations the serving source trailed the index at admission
  /// (0 when served live or from a current snapshot).
  uint64_t staleness = 0;

  ServedFrom served_from = ServedFrom::kLiveIndex;
};

/// One answered batch; results[i] answers pairs[i]. All answers come from
/// the same source at the same generation.
struct BatchQueryResponse {
  std::vector<SpcResult> results;
  uint64_t generation = 0;
  uint64_t staleness = 0;
  ServedFrom served_from = ServedFrom::kLiveIndex;
};

/// One admitted write call: per-update outcomes, the folded counters of
/// everything that applied, and the token a later read can wait on.
struct UpdateResponse {
  /// Folded engine counters across the updates that applied.
  UpdateStats stats;

  /// One report per input update, in input order: kApplied (with that
  /// update's own stats and post-update generation), kNoOp, or kRejected
  /// with a static reason. The admission contract: the number of
  /// kApplied reports equals exactly the generation distance this call
  /// advanced the index (absent concurrent writers).
  std::vector<WriteReport> reports;

  /// Outcome tallies over `reports` (applied + noops + rejected ==
  /// reports.size()).
  size_t applied = 0;
  size_t noops = 0;
  size_t rejected = 0;

  WriteToken token;
};

/// AddVertex outcome: the new id and the token that covers its creation.
struct AddVertexResponse {
  Vertex vertex = kInvalidVertex;
  WriteToken token;
};

class SpcService {
 public:
  /// Takes ownership of `graph` and builds its index (HP-SPC).
  explicit SpcService(Graph graph, const DynamicSpcOptions& options = {});

  /// Adopts a pre-built index of `graph` (e.g. loaded via SpcIndex::Load).
  SpcService(Graph graph, SpcIndex index,
             const DynamicSpcOptions& options = {});

  /// Opens a DURABLE service on `durability.dir` (DESIGN.md §11). An
  /// empty directory bootstraps from `bootstrap` (building its index)
  /// and publishes the first checkpoint; a non-empty one recovers —
  /// newest valid checkpoint (previous on checksum failure), WAL
  /// replayed through the engine to the exact last durably-written
  /// generation — and `bootstrap` is ignored. Every accepted write is
  /// then WAL-appended before the engine applies it; checkpoints
  /// publish in the background per the thresholds. RecoveryInfo() says
  /// what recovery did. The bootstrap build honors `options.build`
  /// (parallel construction, DESIGN.md §12) — safe for checkpoint
  /// digests because the parallel builder is label-identical to the
  /// sequential one.
  ///
  /// Fails with kDataLoss when durable state is damaged beyond the
  /// checkpoint fallback, kIOError on filesystem trouble, and
  /// kNotSupported when `options` enables the lazy rebuild policy
  /// (policy rebuilds advance the generation outside the WAL, which
  /// would break replay determinism).
  static StatusOr<std::unique_ptr<SpcService>> Open(
      Graph bootstrap, const DurabilityOptions& durability,
      const DynamicSpcOptions& options = {});

  /// Opens a DURABLE service adopting externally reconstructed state at
  /// an exact generation — the failover path (ReplicaService::Promote
  /// hands in the drained replica's graph + index). `durability.dir`
  /// must not already hold durable state: bootstrapping over a MANIFEST
  /// (or over WAL records) would silently discard it, so that case is
  /// kInvalidArgument — recover such a directory with Open instead. The
  /// new service starts a fresh WAL/checkpoint lineage whose first
  /// checkpoint is the adopted state at `generation`; subsequent writes
  /// continue the generation chain from there, so read-your-writes
  /// tokens issued by the old primary stay valid against the promoted
  /// one. Same option restrictions as Open (lazy rebuild policies are
  /// kNotSupported).
  static StatusOr<std::unique_ptr<SpcService>> OpenWithState(
      Graph graph, SpcIndex index, uint64_t generation,
      const DurabilityOptions& durability,
      const DynamicSpcOptions& options = {});

  /// Stops the background checkpointer and closes the WAL (a clean close
  /// syncs it — shutdown is not a crash). No-op for non-durable services.
  ~SpcService();

  // --- reads -------------------------------------------------------------

  /// SPC query under the given read options.
  ///
  /// Blocking: never blocks when snapshot-served; a live-served read may
  /// wait for an in-flight writer, bounded by options.timeout when set.
  /// Thread-safe against every other method. Error codes:
  /// kInvalidArgument (out-of-range vertex id, or a min_generation the
  /// index has not reached), kUnavailable (kSnapshot unservable without
  /// blocking), kNotSupported (kSnapshot with snapshots disabled),
  /// kDeadlineExceeded (live read missed options.timeout).
  StatusOr<QueryResponse> Query(Vertex s, Vertex t,
                                const ReadOptions& options = {}) const;

  /// Batched SPC queries, all served from one source at one generation.
  /// Validation covers every pair before any is evaluated. Same
  /// blocking/thread-safety/error contract as Query; parallel batches
  /// fan out over the engine's shared QueryPool (options.threads caps
  /// the parallelism; no per-batch thread spawns). A deadline-bounded
  /// batch that falls back to the live index runs serially — it must
  /// not queue behind another batch's pool region while holding the
  /// engine's shared lock.
  StatusOr<BatchQueryResponse> QueryBatch(
      std::span<const VertexPair> pairs,
      const ReadOptions& options = {}) const;

  // --- writes ------------------------------------------------------------

  /// Applies a batch of updates in order (exact inverse pairs cancel
  /// first, as in DynamicSpcIndex::ApplyBatch) and reports every
  /// update's individual outcome: the response carries one WriteReport
  /// per input update. Admission is per update, not per batch — an edge
  /// referencing a vertex outside [0, NumVertices()) gets a kRejected
  /// report while the valid remainder still applies; no-op updates
  /// (inserting an existing edge, deleting a missing one) get kNoOp and
  /// do not advance the generation. The call itself only fails on
  /// engine-level misuse, so check per-update outcomes, not just ok().
  ///
  /// Blocking: takes the writer lock per applied update; the batch is
  /// not one atomic unit (readers may observe intermediate generations).
  /// Thread-safe against every other method. On a durable service the
  /// admitted subset is journaled (intent before apply, commit with
  /// per-update outcomes after) and the whole call is serialized with
  /// other writes; a batch larger than kWalMaxBatchUpdates (its intent
  /// record would not fit one WAL frame) is kInvalidArgument up front —
  /// split it; after a WAL failure the service is fail-stop and every
  /// write returns the original kIOError.
  StatusOr<UpdateResponse> ApplyUpdates(std::span<const Update> updates,
                                        const WriteOptions& write = {});

  /// Single-edge conveniences over ApplyUpdates. Unlike the batch call,
  /// an out-of-range endpoint fails the whole call with
  /// kInvalidArgument (there is no partial batch to salvage). A legal
  /// no-op returns OK with reports[0].outcome == kNoOp.
  StatusOr<UpdateResponse> InsertEdge(Vertex u, Vertex v,
                                      const WriteOptions& write = {});
  StatusOr<UpdateResponse> RemoveEdge(Vertex u, Vertex v,
                                      const WriteOptions& write = {});

  /// Adds an isolated vertex. Infallible on a non-durable service (the
  /// id space simply grows); on a fail-stopped durable service the write
  /// is refused and resp.vertex == kInvalidVertex. Takes the writer
  /// lock; forces a full snapshot rebuild next refresh.
  AddVertexResponse AddVertex(const WriteOptions& write = {});

  /// Removes all edges incident to `v` (the paper's vertex deletion);
  /// the id stays valid but isolated. kInvalidArgument for an
  /// out-of-range id. Runs one writer-locked update per incident edge;
  /// readers may observe intermediate generations.
  StatusOr<UpdateResponse> RemoveVertex(Vertex v,
                                        const WriteOptions& write = {});

  // --- durability ---------------------------------------------------------

  /// True when this service journals writes (constructed via Open).
  bool Durable() const { return wal_ != nullptr; }

  /// What recovery did at Open (all-zero for non-durable services and
  /// fresh bootstraps).
  const RecoveryReport& RecoveryInfo() const { return recovery_report_; }

  /// Publishes a checkpoint of the current state NOW (temp → fsync →
  /// rename → MANIFEST → dir-fsync), rotates the WAL, and garbage-
  /// collects covered segments. Blocks writes for the capture + publish.
  /// kNotSupported on a non-durable service; after a failure the
  /// durability path is fail-stop.
  Status Checkpoint();

  // --- replication ---------------------------------------------------------

  /// Creates a WAL shipper pumping this durable service's directory into
  /// `transport` (DESIGN.md §13), fully wired: the service's filesystem
  /// and directory, its checkpointer as the retention pin (GC never
  /// deletes a segment the shipper still tails), its fsync horizon as
  /// the shipping cap (replicas never see a write the primary could
  /// still lose), and its ServiceMetrics as the default metric hooks
  /// (`base` hooks win where set; other `base` fields pass through).
  /// The shipper is returned stopped — call Start() for the background
  /// pump or drive ShipOnce() manually — and must not outlive the
  /// service. kNotSupported on a non-durable service.
  StatusOr<std::unique_ptr<WalShipper>> NewShipper(
      Transport* transport, WalShipper::Options base = {});

  // --- multi-process serving ----------------------------------------------

  /// Publishes the current state into `publisher`'s shared directory as a
  /// generation-numbered mmap-servable arena (DESIGN.md §14), making it
  /// adoptable by MappedReaderService processes. Captures a consistent
  /// (generation, index) pair under a write freeze — readers keep serving
  /// throughout — then writes outside any engine lock. The PUBSTATE
  /// manifest records the WAL segment the service had open at capture
  /// (0 on a non-durable service). Works on durable and non-durable
  /// services alike; the publisher refuses generation regressions, so
  /// republishing the same generation (e.g. after crash recovery) is the
  /// only way to "repeat" a publish.
  Status PublishSnapshot(SnapshotPublisher* publisher);

  // --- freshness barriers -------------------------------------------------

  /// Blocks until the published snapshot reflects the token's generation,
  /// so subsequent kSnapshot reads observe the write. kNotSupported when
  /// snapshots are disabled; kInvalidArgument for a token the index has
  /// not reached (never issued by this service).
  Status WaitForSnapshot(WriteToken token) const;

  /// Deadline-bounded barrier: as above, but gives up after `timeout`
  /// and returns kDeadlineExceeded if the snapshot has not caught up by
  /// then (timeout 0 = instant freshness probe; negative = kNoTimeout =
  /// block indefinitely). Under kSync/kManual an unexpired deadline
  /// admits the caller to the inline rebuild it requested — the deadline
  /// bounds waiting on others, not the caller's own build.
  Status WaitForSnapshot(WriteToken token,
                         std::chrono::nanoseconds timeout) const;

  // --- observability ------------------------------------------------------

  /// Current structural generation of the engine. Lock-free.
  uint64_t Generation() const { return engine_.Generation(); }

  /// Current vertex-id space [0, NumVertices()). Lock-free.
  size_t NumVertices() const { return engine_.NumVertices(); }

  /// Aggregated service counters since construction: per-mode query
  /// counts, served-from distribution, staleness histogram, deadline
  /// misses, rejections, batch sizes, per-update write outcomes — the
  /// freshness-SLO surface (DESIGN.md §10). Monotone; diff two snapshots
  /// for a rate window, ToString() for a text dump. Thread-safe and
  /// cheap enough to scrape in a tight monitoring loop. When the hot-pair
  /// cache is enabled (DynamicSpcOptions::pair_cache, DESIGN.md §15) its
  /// hit/miss/insert/evict counters are folded into the snapshot.
  MetricsSnapshot Metrics() const;

  /// The underlying engine, for tooling that needs the raw surface
  /// (graph access, snapshot counters, benches). The engine's documented
  /// concurrency contract still applies.
  const DynamicSpcIndex& engine() const { return engine_; }
  DynamicSpcIndex& engine() { return engine_; }

 private:
  /// Shared read-routing: resolves which source should serve a read of
  /// `queries` queries under `options`. On OK, *pin names the snapshot to
  /// serve (empty => the live index) and *generation holds the admission
  /// generation. Out-params instead of a StatusOr<struct>, and forced
  /// inlining into its two callers, keep the single-query hot path free
  /// of wrapper construction and call overhead while the routing logic
  /// stays written exactly once.
  [[gnu::always_inline]] inline Status RouteRead(
      const ReadOptions& options, size_t queries, Vertex max_vertex,
      uint64_t* generation, SnapshotManager::Pinned* pin) const;

  /// kSnapshot routing (the only mode with refusal outcomes), split out
  /// so RouteRead's hot path stays small.
  Status RouteSnapshotRead(const ReadOptions& options, size_t queries,
                           Vertex max_vertex, uint64_t generation,
                           SnapshotManager::Pinned* pin) const;

  Status ValidateVertex(Vertex v, const char* what) const;

  /// Shared barrier body behind both WaitForSnapshot overloads
  /// (`timed` = honor `deadline`).
  Status WaitForSnapshotUntil(WriteToken token, bool timed,
                              std::chrono::steady_clock::time_point deadline)
      const;

  // --- durability internals (inactive — wal_ == nullptr — unless the
  // service was constructed via Open) --------------------------------------

  /// Wires up the WAL + checkpointer after recovery/bootstrap: creates
  /// segment `plan.next_wal_seq`, publishes a checkpoint of the
  /// just-opened state (so GC can drop replayed segments) retaining the
  /// checkpoint recovery validated as the fallback, starts the
  /// background checkpointer when thresholds are configured.
  Status StartDurability(const DurabilityOptions& durability,
                         const RecoveryPlan& plan);

  /// The non-durable ApplyUpdates body (also the durable path's final
  /// shape — kept verbatim so the non-durable service is untouched).
  StatusOr<UpdateResponse> ApplyUpdatesPlain(std::span<const Update> updates);

  /// Durable ApplyUpdates: intent record → engine apply → commit record
  /// with per-update outcomes, all under dur_mu_.
  StatusOr<UpdateResponse> ApplyUpdatesDurable(std::span<const Update> updates,
                                               const WriteOptions& write);

  /// Appends one encoded record to the WAL, updating metrics; on failure
  /// trips fail-stop and returns the sticky error. Caller holds dur_mu_.
  StatusOr<uint64_t> AppendWalLocked(const std::vector<uint8_t>& payload);

  /// Mints the next intent/commit pairing key, unique across restarts
  /// (see batch_seq_in_segment_). Caller holds dur_mu_. The 32/32 split
  /// cannot realistically overflow: the low half would need 4G pairs in
  /// one segment (>128 GiB of records), the high half 4G rotations.
  uint64_t NextBatchSeqLocked() {
    return (wal_->seq() << 32) | ++batch_seq_in_segment_;
  }

  /// Marks the durability path failed (first error wins) and records it.
  /// Caller holds dur_mu_.
  Status FailDurabilityLocked(Status st);

  /// Blocks until `offset` is synced in `wal` (a shared_ptr copy taken
  /// under dur_mu_, so rotation can retire the segment meanwhile).
  Status WaitDurableOffset(const std::shared_ptr<WalWriter>& wal,
                           uint64_t offset);

  /// Checkpoint body; caller holds dur_mu_.
  Status CheckpointLocked();

  /// (current segment seq, synced bytes of it) under dur_mu_ — the
  /// shipper's fsync horizon (WalShipper::Options::synced_tip).
  std::pair<uint64_t, uint64_t> WalSyncedTip();

  /// Wakes the background checkpointer when the current segment crossed
  /// a threshold. Caller holds dur_mu_.
  void MaybeTriggerCheckpointLocked();

  void CheckpointLoop();

  DynamicSpcIndex engine_;

  /// Aggregate counters (Metrics()); mutable because recording a read is
  /// not a logical mutation of the service.
  mutable ServiceMetrics metrics_;

  /// Hot-pair result cache (null unless options.pair_cache.enabled).
  /// Consulted only on snapshot-served single reads; mutable for the
  /// same reason as metrics_ — caching a result is not a logical
  /// mutation of the service.
  mutable std::unique_ptr<PairCache> pair_cache_;

  FileSystem* fs_ = nullptr;           ///< null ⇔ non-durable
  DurabilityOptions dur_options_;
  std::unique_ptr<Checkpointer> checkpointer_;

  /// Serializes the whole write path on a durable service: WAL append,
  /// engine apply, commit append, rotation, checkpoint capture. Ordering
  /// with the engine lock: dur_mu_ is always taken FIRST (writes apply
  /// under it; Checkpoint takes it, then FreezeWrites). Reads never
  /// touch it.
  std::mutex dur_mu_;
  /// Current segment's writer. shared_ptr so a durable waiter can hold
  /// the segment across a concurrent rotation (the retired writer's
  /// Close syncs everything first, so waiters are satisfied, not
  /// stranded). Swapped only under dur_mu_.
  std::shared_ptr<WalWriter> wal_;
  /// Intent/commit pairing keys are scoped to the live segment:
  /// NextBatchSeqLocked() returns (segment seq << 32) | ++counter, and
  /// the counter resets at every rotation. Pairs never straddle segments
  /// (intent and commit are appended under one dur_mu_ hold, and rotation
  /// holds dur_mu_ too) and segment seqs are unique across process
  /// restarts (next_wal_seq = max on disk + 1), so a restarted service
  /// can never mint a seq colliding with a crashed run's stale unpaired
  /// intent — which fallback recovery scans in the same pass and would
  /// otherwise refuse as a duplicate.
  uint64_t batch_seq_in_segment_ = 0;  ///< under dur_mu_
  bool dur_failed_ = false;      ///< fail-stop latch (under dur_mu_)
  Status dur_error_;             ///< first durability failure

  std::thread checkpoint_thread_;
  std::condition_variable checkpoint_cv_;
  bool checkpoint_requested_ = false;  ///< under dur_mu_
  bool stop_checkpointer_ = false;     ///< under dur_mu_

  RecoveryReport recovery_report_;
};

}  // namespace dspc

#endif  // DSPC_API_SPC_SERVICE_H_
