// SpcService: the typed, consistency-aware serving surface over
// DynamicSpcIndex (DESIGN.md §9).
//
// The core engine answers raw Query(s, t) calls with whatever the current
// refresh policy happens to serve; a production caller needs three things
// the raw entry point cannot express:
//
//   admission   Requests are validated before they touch the index —
//               out-of-range vertex ids return Status kInvalidArgument
//               instead of undefined behavior, a min_generation from the
//               future is rejected instead of silently unsatisfiable.
//   freshness   Every read carries ReadOptions{consistency, ...} choosing
//               a point on the freshness/latency lattice:
//                 kFresh             answers reflect every update admitted
//                                    before the read; may ride the mutable
//                                    index (and thus briefly wait for an
//                                    in-flight writer).
//                 kSnapshot          answers come from the pinned published
//                                    snapshot and NEVER block — not on
//                                    writers, not on maintenance. May be
//                                    stale; unservable requests (nothing
//                                    published, snapshot too old for
//                                    min_generation, vertex newer than the
//                                    snapshot) return kUnavailable instead
//                                    of waiting.
//                 kBoundedStaleness  snapshot-served while the snapshot is
//                                    within max_lag generations of the
//                                    index (and >= min_generation);
//                                    otherwise escalates to the live index,
//                                    which always satisfies both bounds.
//   tokens      Every write returns a WriteToken carrying the structural
//               generation it advanced the index to. A later read passes
//               token.generation as ReadOptions::min_generation and is
//               guaranteed to observe that write (read-your-writes) with
//               no global quiescing: the service simply refuses to serve a
//               snapshot older than the token and escalates per the
//               consistency mode. WaitForSnapshot(token) is the explicit
//               barrier for callers that want the *snapshot* to catch up.
//
// Every response is generation-tagged and says where it was served from
// (snapshot vs live index) and how stale that source was at admission —
// the observability hooks a serving fleet aggregates.
//
// Thread-safety: all methods may be called from any number of threads
// concurrently; reads never see a torn index (they serve immutable
// snapshots or take the engine's shared lock).

#ifndef DSPC_API_SPC_SERVICE_H_
#define DSPC_API_SPC_SERVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dspc/common/status.h"
#include "dspc/common/types.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/update_stats.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/update_stream.h"

namespace dspc {

/// The freshness contract of one read. See the file comment for the full
/// lattice.
///
/// kSnapshot requires a published snapshot to exist: under kBackground
/// one is published eagerly at construction, but under kSync/kManual the
/// first publish happens only when other traffic causes it (a
/// budget-crossing kFresh read under kSync, or an explicit refresh), so
/// a pure-kSnapshot client should call WaitForSnapshot({Generation()})
/// once to warm the serving path — until then kSnapshot reads return
/// kUnavailable.
enum class Consistency : unsigned char {
  kFresh,             ///< reflects all updates admitted before the read
  kSnapshot,          ///< pinned published snapshot; never blocks
  kBoundedStaleness,  ///< snapshot while within max_lag, else live index
};

/// Per-read options. Aggregate-initializable:
///   service.Query(s, t, {.consistency = Consistency::kSnapshot});
struct ReadOptions {
  Consistency consistency = Consistency::kFresh;

  /// kBoundedStaleness: how many generations the served snapshot may
  /// trail the index. 0 demands a current snapshot (escalating to the
  /// live index whenever the snapshot is at all stale).
  uint64_t max_lag = 0;

  /// Read-your-writes floor: the answer must reflect at least this
  /// structural generation (normally a WriteToken::generation from a
  /// prior update on this service). 0 = no floor.
  uint64_t min_generation = 0;

  /// Worker threads for batch reads (0 = hardware concurrency). Ignored
  /// by single queries.
  unsigned threads = 0;
};

/// Proof of a write's position in the update sequence. Pass
/// token.generation as ReadOptions::min_generation to read your write.
struct WriteToken {
  uint64_t generation = 0;
};

/// Which serving path answered a read.
enum class ServedFrom : unsigned char {
  kSnapshot,   ///< immutable published FlatSpcIndex snapshot
  kLiveIndex,  ///< mutable index under the engine's shared lock
};

/// One answered query plus its serving metadata.
struct QueryResponse {
  SpcResult result;

  /// Structural generation the answer reflects (at least; a live-served
  /// answer may already include updates admitted after this read began).
  uint64_t generation = 0;

  /// Generations the serving source trailed the index at admission
  /// (0 when served live or from a current snapshot).
  uint64_t staleness = 0;

  ServedFrom served_from = ServedFrom::kLiveIndex;
};

/// One answered batch; results[i] answers pairs[i]. All answers come from
/// the same source at the same generation.
struct BatchQueryResponse {
  std::vector<SpcResult> results;
  uint64_t generation = 0;
  uint64_t staleness = 0;
  ServedFrom served_from = ServedFrom::kLiveIndex;
};

/// One applied write (or batch of writes): the engine's per-update
/// counters folded together, plus the token a later read can wait on.
struct UpdateResponse {
  UpdateStats stats;
  WriteToken token;
};

/// AddVertex outcome: the new id and the token that covers its creation.
struct AddVertexResponse {
  Vertex vertex = kInvalidVertex;
  WriteToken token;
};

class SpcService {
 public:
  /// Takes ownership of `graph` and builds its index (HP-SPC).
  explicit SpcService(Graph graph, const DynamicSpcOptions& options = {});

  /// Adopts a pre-built index of `graph` (e.g. loaded via SpcIndex::Load).
  SpcService(Graph graph, SpcIndex index,
             const DynamicSpcOptions& options = {});

  // --- reads -------------------------------------------------------------

  /// SPC query under the given read options. kInvalidArgument for
  /// out-of-range vertex ids or a min_generation the index has not
  /// reached; kUnavailable when kSnapshot cannot be served without
  /// blocking.
  StatusOr<QueryResponse> Query(Vertex s, Vertex t,
                                const ReadOptions& options = {}) const;

  /// Batched SPC queries, all served from one source at one generation.
  /// Validation covers every pair before any is evaluated.
  StatusOr<BatchQueryResponse> QueryBatch(
      std::span<const VertexPair> pairs,
      const ReadOptions& options = {}) const;

  // --- writes ------------------------------------------------------------

  /// Applies a batch of updates in order (exact inverse pairs cancel
  /// first, as in DynamicSpcIndex::ApplyBatch). Every endpoint is
  /// validated before any update is applied; edges referencing vertices
  /// outside [0, NumVertices()) return kInvalidArgument. No-op updates
  /// (inserting an existing edge, deleting a missing one) are legal and
  /// simply do not advance the returned token beyond concurrent writes.
  StatusOr<UpdateResponse> ApplyUpdates(std::span<const Update> updates);

  /// Single-edge conveniences over ApplyUpdates.
  StatusOr<UpdateResponse> InsertEdge(Vertex u, Vertex v);
  StatusOr<UpdateResponse> RemoveEdge(Vertex u, Vertex v);

  /// Adds an isolated vertex. Infallible (the id space simply grows).
  AddVertexResponse AddVertex();

  /// Removes all edges incident to `v` (the paper's vertex deletion);
  /// the id stays valid but isolated.
  StatusOr<UpdateResponse> RemoveVertex(Vertex v);

  // --- freshness barriers -------------------------------------------------

  /// Blocks until the published snapshot reflects the token's generation,
  /// so subsequent kSnapshot reads observe the write. kNotSupported when
  /// snapshots are disabled; kInvalidArgument for a token the index has
  /// not reached (never issued by this service).
  Status WaitForSnapshot(WriteToken token) const;

  // --- observability ------------------------------------------------------

  /// Current structural generation of the engine.
  uint64_t Generation() const { return engine_.Generation(); }

  /// Current vertex-id space [0, NumVertices()).
  size_t NumVertices() const { return engine_.NumVertices(); }

  /// The underlying engine, for tooling that needs the raw surface
  /// (graph access, snapshot counters, benches). The engine's documented
  /// concurrency contract still applies.
  const DynamicSpcIndex& engine() const { return engine_; }
  DynamicSpcIndex& engine() { return engine_; }

 private:
  /// Shared read-routing: resolves which source should serve a read of
  /// `queries` queries under `options`. On OK, *pin names the snapshot to
  /// serve (empty => the live index) and *generation holds the admission
  /// generation. Out-params instead of a StatusOr<struct>, and forced
  /// inlining into its two callers, keep the single-query hot path free
  /// of wrapper construction and call overhead while the routing logic
  /// stays written exactly once.
  [[gnu::always_inline]] inline Status RouteRead(
      const ReadOptions& options, size_t queries, Vertex max_vertex,
      uint64_t* generation, SnapshotManager::Pinned* pin) const;

  /// kSnapshot routing (the only mode with refusal outcomes), split out
  /// so RouteRead's hot path stays small.
  Status RouteSnapshotRead(const ReadOptions& options, size_t queries,
                           Vertex max_vertex, uint64_t generation,
                           SnapshotManager::Pinned* pin) const;

  Status ValidateVertex(Vertex v, const char* what) const;

  DynamicSpcIndex engine_;
};

}  // namespace dspc

#endif  // DSPC_API_SPC_SERVICE_H_
