#include "dspc/api/mapped_reader_service.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "dspc/persist/snapshot_arena.h"

namespace dspc {

namespace {

[[gnu::cold, gnu::noinline]] Status BadVertex(const char* what, Vertex v,
                                              size_t n) {
  return Status::InvalidArgument(std::string(what) + " vertex id " +
                                 std::to_string(v) + " outside [0, " +
                                 std::to_string(n) + ")");
}

[[gnu::cold, gnu::noinline]] Status NoLiveIndex() {
  return Status::NotSupported(
      "kFresh is not servable by a mapped reader (no live index in this "
      "process); use kSnapshot or kBoundedStaleness");
}

uint64_t SelfPid() { return static_cast<uint64_t>(::getpid()); }

}  // namespace

MappedReaderService::MappedReaderService(std::string dir,
                                         MappedReaderOptions options)
    : fs_(options.fs != nullptr ? options.fs : FileSystem::Default()),
      dir_(std::move(dir)),
      options_(std::move(options)) {}

StatusOr<std::unique_ptr<MappedReaderService>> MappedReaderService::Open(
    const std::string& dir, MappedReaderOptions options) {
  auto svc = std::unique_ptr<MappedReaderService>(
      new MappedReaderService(dir, std::move(options)));
  svc->pin_owner_ = svc->options_.pin_owner.empty()
                        ? "pid" + std::to_string(SelfPid())
                        : svc->options_.pin_owner;
  if (Status st = svc->RefreshNow(); !st.ok()) return st;
  if (svc->options_.poll_interval.count() > 0) {
    svc->poll_thread_ = std::thread([s = svc.get()] { s->PollLoop(); });
  }
  return svc;
}

MappedReaderService::~MappedReaderService() {
  if (poll_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(poll_mu_);
      stop_poll_ = true;
    }
    poll_cv_.notify_all();
    poll_thread_.join();
  }
  // Clean shutdown releases the retention hold; a killed reader's pin is
  // swept by the publisher's pid-liveness probe instead.
  if (options_.write_pins && !pin_owner_.empty()) {
    (void)RemoveSnapshotPin(fs_, dir_, pin_owner_);
  }
}

std::shared_ptr<const MappedReaderService::Adopted>
MappedReaderService::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t MappedReaderService::Generation() const {
  const auto cur = Current();
  return cur ? cur->generation : 0;
}

uint64_t MappedReaderService::WalSeq() const {
  const auto cur = Current();
  return cur ? cur->wal_seq : 0;
}

size_t MappedReaderService::NumVertices() const {
  const auto cur = Current();
  return cur ? cur->index->NumVertices() : 0;
}

Status MappedReaderService::Refresh() { return RefreshNow(); }

Status MappedReaderService::RefreshNow() const {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  return RefreshLocked();
}

Status MappedReaderService::RefreshLocked() const {
  const std::shared_ptr<const Adopted> cur = Current();
  Status last = Status::OK();
  // The pin-vs-GC adoption race (file comment) is closed by retrying
  // against a fresh PUBSTATE when the arena vanished under us; two
  // retries outlast any single concurrent publish+GC cycle, and a writer
  // fast enough to lap us twice leaves `last` telling the caller why.
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto state = ReadPubState(fs_, dir_);
    if (!state.ok()) return state.status();
    publisher_generation_.store(state->generation,
                                std::memory_order_relaxed);
    if (cur && state->generation <= cur->generation) return Status::OK();
    if (options_.write_pins) {
      if (Status st = WriteSnapshotPin(fs_, dir_, pin_owner_,
                                       state->generation, SelfPid());
          !st.ok()) {
        return st;
      }
    }
    const std::string path = dir_ + "/" + state->file_name;
    if (!fs_->FileExists(path)) {
      last = Status::Unavailable("arena " + state->file_name +
                                 " reclaimed before adoption could pin it");
      continue;
    }
    auto arena = MappedArena::Map(fs_, path);
    if (!arena.ok()) {
      // Leave the pin naming the generation actually served.
      if (cur && options_.write_pins) {
        (void)WriteSnapshotPin(fs_, dir_, pin_owner_, cur->generation,
                               SelfPid());
      }
      return arena.status();
    }
    auto adopted = std::make_shared<Adopted>();
    adopted->index = arena->snapshot();
    adopted->generation = arena->generation();
    adopted->wal_seq = arena->wal_seq();
    {
      std::lock_guard<std::mutex> swap_lock(mu_);
      current_ = std::move(adopted);
    }
    // The old mapping is now unreferenced by the service; it unmaps when
    // the last in-flight query's snapshot pointer drops.
    return Status::OK();
  }
  if (cur && options_.write_pins) {
    (void)WriteSnapshotPin(fs_, dir_, pin_owner_, cur->generation,
                           SelfPid());
  }
  return last;
}

Status MappedReaderService::RouteMapped(
    const ReadOptions& options, std::shared_ptr<const Adopted>* cur,
    uint64_t* staleness) const {
  switch (options.consistency) {
    case Consistency::kFresh:
      metrics_.RecordRejected(Status::Code::kNotSupported);
      return NoLiveIndex();

    case Consistency::kSnapshot: {
      // No I/O: serve the mapping, report lag against the publisher
      // generation last observed. The served generation is exact; the
      // staleness can understate between polls — never overstate
      // freshness of the *answer*, which is pinned to (*cur)->generation.
      if ((*cur)->generation < options.min_generation) {
        metrics_.RecordRejected(Status::Code::kUnavailable);
        return Status::Unavailable(
            "mapped snapshot at generation " +
            std::to_string((*cur)->generation) +
            " is older than min_generation " +
            std::to_string(options.min_generation) +
            " (kSnapshot never remaps inline; Refresh() and retry)");
      }
      const uint64_t pub = PublisherGeneration();
      *staleness =
          pub > (*cur)->generation ? pub - (*cur)->generation : 0;
      return Status::OK();
    }

    case Consistency::kBoundedStaleness: {
      // The bound must hold against the *current* publisher generation,
      // so the manifest is re-read — a bounded answer is never issued
      // off a stale cached bound.
      auto state = ReadPubState(fs_, dir_);
      if (!state.ok()) {
        metrics_.RecordRejected(Status::Code::kUnavailable);
        return Status::Unavailable(
            "cannot establish the staleness bound: " +
            state.status().message());
      }
      publisher_generation_.store(state->generation,
                                  std::memory_order_relaxed);
      const uint64_t pub = state->generation;
      auto behind = [&](const Adopted& a) {
        return a.generation < options.min_generation ||
               (pub > a.generation && pub - a.generation > options.max_lag);
      };
      if (behind(**cur)) {
        // One inline adoption attempt — the closest a reader gets to
        // SpcService's escalate-to-live.
        (void)RefreshNow();
        *cur = Current();
        if (behind(**cur)) {
          metrics_.RecordRejected(Status::Code::kUnavailable);
          return Status::Unavailable(
              "mapped snapshot at generation " +
              std::to_string((*cur)->generation) +
              " cannot satisfy max_lag " + std::to_string(options.max_lag) +
              " / min_generation " + std::to_string(options.min_generation) +
              " against publisher generation " + std::to_string(pub));
        }
      }
      *staleness =
          pub > (*cur)->generation ? pub - (*cur)->generation : 0;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown consistency mode");
}

StatusOr<QueryResponse> MappedReaderService::Query(
    Vertex s, Vertex t, const ReadOptions& options) const {
  std::shared_ptr<const Adopted> cur = Current();
  const size_t n = cur->index->NumVertices();
  if (static_cast<size_t>(s) >= n || static_cast<size_t>(t) >= n)
      [[unlikely]] {
    metrics_.RecordRejected(Status::Code::kInvalidArgument);
    return BadVertex(static_cast<size_t>(s) >= n ? "source" : "target",
                     static_cast<size_t>(s) >= n ? s : t, n);
  }
  uint64_t staleness = 0;
  if (Status st = RouteMapped(options, &cur, &staleness); !st.ok()) {
    return st;
  }
  metrics_.RecordRead(options.consistency, ServedFrom::kSnapshot, staleness,
                      1, false);
  return StatusOr<QueryResponse>(std::in_place, cur->index->Query(s, t),
                                 cur->generation, staleness,
                                 ServedFrom::kSnapshot);
}

StatusOr<BatchQueryResponse> MappedReaderService::QueryBatch(
    std::span<const VertexPair> pairs, const ReadOptions& options) const {
  std::shared_ptr<const Adopted> cur = Current();
  const size_t n = cur->index->NumVertices();
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto [s, t] = pairs[i];
    if (static_cast<size_t>(s) >= n || static_cast<size_t>(t) >= n) {
      metrics_.RecordRejected(Status::Code::kInvalidArgument);
      const Status bad =
          BadVertex(static_cast<size_t>(s) >= n ? "source" : "target",
                    static_cast<size_t>(s) >= n ? s : t, n);
      return Status::InvalidArgument("pair " + std::to_string(i) + ": " +
                                     bad.message());
    }
  }
  uint64_t staleness = 0;
  if (Status st = RouteMapped(options, &cur, &staleness); !st.ok()) {
    return st;
  }
  StatusOr<BatchQueryResponse> out(std::in_place);
  out->results = cur->index->QueryManyParallel(pairs, options.threads);
  out->generation = cur->generation;
  out->staleness = staleness;
  out->served_from = ServedFrom::kSnapshot;
  metrics_.RecordRead(options.consistency, ServedFrom::kSnapshot, staleness,
                      pairs.size(), true);
  return out;
}

void MappedReaderService::PollLoop() {
  std::unique_lock<std::mutex> lock(poll_mu_);
  while (!stop_poll_) {
    if (poll_cv_.wait_for(lock, options_.poll_interval,
                          [&] { return stop_poll_; })) {
      return;
    }
    lock.unlock();
    // Transient failures (writer mid-publish, racing GC) are retried on
    // the next tick; queries keep serving the adopted generation.
    (void)RefreshNow();
    lock.lock();
  }
}

}  // namespace dspc
