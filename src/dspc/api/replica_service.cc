#include "dspc/api/replica_service.h"

#include <algorithm>
#include <utility>

#include "dspc/common/binary_io.h"
#include "dspc/persist/checkpointer.h"
#include "dspc/persist/recovery.h"

namespace dspc {

namespace {

uint32_t LoadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t LoadLE64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLE32(p)) |
         (static_cast<uint64_t>(LoadLE32(p + 4)) << 32);
}

/// Validates a shipped segment's header against the replica's chain
/// position. The faults a Transport may inject are byte-preserving
/// (prefixes, duplicates, delays — never corruption), so a damaged or
/// mismatched header here is genuine divergence between what the primary
/// wrote and what the replica expects: kDataLoss, not a retry.
Status CheckShippedHeader(std::span<const uint8_t> window, uint64_t seq,
                          uint64_t chain_generation) {
  const uint8_t* p = window.data();
  const uint32_t crc = LoadLE32(p + kWalHeaderBytes - 4);
  if (Crc32c(p, kWalHeaderBytes - 4) != crc || LoadLE32(p) != kWalMagic ||
      LoadLE32(p + 4) != kWalVersion) {
    return Status::DataLoss("shipped segment header damaged: " +
                            WalSegmentFileName(seq));
  }
  if (LoadLE64(p + 8) != seq) {
    return Status::DataLoss("shipped segment names seq " +
                            std::to_string(LoadLE64(p + 8)) +
                            ", store filed it as " + std::to_string(seq));
  }
  const uint64_t base = LoadLE64(p + 16);
  if (base != chain_generation) {
    return Status::DataLoss(
        "replica diverged: " + WalSegmentFileName(seq) +
        " chains from generation " + std::to_string(base) +
        ", replica applied through " + std::to_string(chain_generation));
  }
  return Status::OK();
}

/// Absolute deadline for a non-negative timeout, saturating instead of
/// overflowing (so nanoseconds::max() means "practically forever").
std::chrono::steady_clock::time_point SaturatingDeadline(
    std::chrono::nanoseconds timeout) {
  const auto now = std::chrono::steady_clock::now();
  if (timeout >= std::chrono::steady_clock::time_point::max() - now) {
    return std::chrono::steady_clock::time_point::max();
  }
  return now + timeout;
}

}  // namespace

ReplicaService::ReplicaService(const ReplicaOptions& options)
    : options_(options) {}

StatusOr<std::unique_ptr<ReplicaService>> ReplicaService::Open(
    const ReplicaOptions& options) {
  if (options.transport == nullptr) {
    return Status::InvalidArgument("ReplicaOptions::transport must be set");
  }
  if (options.engine.rebuild_after_updates != 0 ||
      options.engine.rebuild_growth_factor != 0.0) {
    return Status::NotSupported(
        "replica serving requires the lazy rebuild policy disabled: a "
        "policy rebuild advances the generation outside the shipped log, "
        "which would break the replay chain");
  }
  std::unique_ptr<ReplicaService> replica(new ReplicaService(options));
  ReplicationBackoff backoff(options.backoff);
  const bool timed = options.bootstrap_timeout >= std::chrono::nanoseconds{0};
  const auto deadline = timed ? SaturatingDeadline(options.bootstrap_timeout)
                              : std::chrono::steady_clock::time_point{};
  for (;;) {
    Status st;
    {
      std::lock_guard<std::mutex> lock(replica->step_mu_);
      auto state = options.transport->FetchState();
      if (state.ok()) {
        st = replica->BootstrapLocked(*state);
        if (st.ok()) {
          replica->primary_durable_.store(
              std::max(state->durable_generation,
                       replica->applied_.load(std::memory_order_acquire)),
              std::memory_order_release);
        }
      } else {
        st = state.status();
      }
    }
    if (st.ok()) break;
    // BootstrapLocked keeps transfer damage retryable, so kDataLoss here
    // would be a store that actively lies; don't spin on it.
    if (st.IsDataLoss()) return st;
    if (timed && std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("replica bootstrap timed out: " +
                                      st.ToString());
    }
    replica->metrics_.RecordReplBackoffSleep();
    std::this_thread::sleep_for(backoff.Next());
  }
  if (options.start_tailer) replica->Start();
  return replica;
}

ReplicaService::~ReplicaService() { Stop(); }

Status ReplicaService::BootstrapLocked(const ShipState& state) {
  if (state.checkpoint_generation == 0) {
    return Status::Unavailable(
        "nothing to bootstrap from: no checkpoint shipped yet");
  }
  std::vector<uint8_t> bytes;
  if (Status st = options_.transport->FetchCheckpoint(
          state.checkpoint_generation, &bytes);
      !st.ok()) {
    return st;
  }
  LoadedCheckpoint ckpt;
  if (Status st = ParseCheckpointBytes(
          std::move(bytes), state.checkpoint_generation,
          "shipped checkpoint " + std::to_string(state.checkpoint_generation),
          &ckpt);
      !st.ok()) {
    // Over a faulty transport a mangled transfer and primary-side damage
    // are indistinguishable, and an honest re-fetch resolves the former
    // — keep it retryable instead of fail-stopping the replica.
    return Status::Unavailable("shipped checkpoint unreadable, re-fetching: " +
                               st.ToString());
  }
  DynamicSpcOptions engine_options = options_.engine;
  engine_options.initial_generation = ckpt.generation;
  auto fresh = std::make_shared<SpcService>(
      std::move(ckpt.graph), ckpt.index.Unpack(), engine_options);
  {
    std::lock_guard<std::mutex> lock(inner_mu_);
    inner_ = std::move(fresh);
  }
  cursor_.emplace(ckpt.generation);
  tail_seq_ = state.checkpoint_wal_seq;
  tail_offset_ = 0;
  applied_.store(ckpt.generation, std::memory_order_release);
  return Status::OK();
}

std::shared_ptr<SpcService> ReplicaService::Inner() const {
  std::lock_guard<std::mutex> lock(inner_mu_);
  return inner_;
}

Status ReplicaService::Step() {
  std::lock_guard<std::mutex> lock(step_mu_);
  if (Status st = Health(); !st.ok()) return st;
  Status st = StepLocked();
  if (st.IsDataLoss()) {
    // Divergence is sticky: a replica whose state is known to disagree
    // with the primary must stop serving progress, loudly.
    {
      std::lock_guard<std::mutex> health_lock(health_mu_);
      health_ = st;
    }
    failed_.store(true, std::memory_order_release);
  } else if (st.ok()) {
    if (last_failed_) {
      last_failed_ = false;
      metrics_.RecordReplReconnect();
    }
  } else {
    last_failed_ = true;
  }
  return st;
}

Status ReplicaService::StepLocked() {
  if (promoted_) {
    return Status::Unavailable("replica was promoted; tailing is stopped");
  }
  auto state = options_.transport->FetchState();
  if (!state.ok()) return state.status();
  {
    // Monotone: a re-fetch can race an in-flight publish backwards.
    uint64_t prev = primary_durable_.load(std::memory_order_relaxed);
    while (state->durable_generation > prev &&
           !primary_durable_.compare_exchange_weak(
               prev, state->durable_generation, std::memory_order_release,
               std::memory_order_relaxed)) {
    }
  }
  if (tail_seq_ < state->min_wal_seq) {
    // The store retired a segment this tail still needed — the replica
    // was down (or slow) past the primary's retention horizon. Jump
    // forward through the newer checkpoint.
    metrics_.RecordRebootstrap();
    return BootstrapLocked(*state);
  }
  while (state->max_wal_seq >= tail_seq_ && state->max_wal_seq != 0) {
    std::vector<uint8_t> window;
    Status fetched =
        options_.transport->FetchSegment(tail_seq_, tail_offset_, &window);
    if (fetched.IsNotFound()) {
      // Retired between FetchState and the fetch: re-bootstrap off a
      // freshly fetched state (the stale one may name retired artifacts).
      metrics_.RecordRebootstrap();
      auto fresh = options_.transport->FetchState();
      if (!fresh.ok()) return fresh.status();
      return BootstrapLocked(*fresh);
    }
    if (!fetched.ok()) return fetched;
    size_t header_bytes = 0;
    if (tail_offset_ < kWalHeaderBytes) {
      // The header is consumed whole, so tail_offset_ is 0 here.
      if (window.size() < kWalHeaderBytes) break;  // still in flight
      if (Status st = CheckShippedHeader(window, tail_seq_,
                                         cursor_->generation());
          !st.ok()) {
        return st;
      }
      header_bytes = kWalHeaderBytes;
    }
    std::vector<WalRecord> records;
    auto consumed = ParseWalFrameWindow(
        std::span<const uint8_t>(window.data() + header_bytes,
                                 window.size() - header_bytes),
        &records);
    if (!consumed.ok()) return consumed.status();
    if (Status st = ApplyWindowLocked(std::move(records)); !st.ok()) {
      return st;
    }
    tail_offset_ += header_bytes + *consumed;
    const bool window_drained = header_bytes + *consumed == window.size();
    if (!window_drained || state->max_wal_seq == tail_seq_) break;
    // Everything fetched was consumed and the shipper moved on to a
    // later segment — it only does that once this one is fully shipped.
    ++tail_seq_;
    tail_offset_ = 0;
  }
  return Status::OK();
}

Status ReplicaService::ApplyWindowLocked(std::vector<WalRecord> records) {
  std::vector<ReplayOp> ops;
  for (WalRecord& rec : records) {
    if (Status st = cursor_->Feed(std::move(rec), &ops); !st.ok()) return st;
  }
  if (ops.empty()) return Status::OK();
  const std::shared_ptr<SpcService> inner = Inner();
  for (const ReplayOp& op : ops) {
    if (Status st = ApplyReplayOp(&inner->engine(), op); !st.ok()) return st;
    // Publish progress per op, not per window: a reader's min_generation
    // is satisfiable the instant its write is applied.
    applied_.store(op.end_generation, std::memory_order_release);
  }
  metrics_.RecordReplApplied(ops.size());
  return Status::OK();
}

void ReplicaService::Start() {
  {
    std::lock_guard<std::mutex> step(step_mu_);
    if (promoted_) return;
  }
  std::lock_guard<std::mutex> lock(tail_mu_);
  if (tail_.joinable()) return;
  stop_tail_ = false;
  tail_ = std::thread([this] { TailLoop(); });
}

void ReplicaService::Stop() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(tail_mu_);
    stop_tail_ = true;
    t = std::move(tail_);
  }
  tail_cv_.notify_all();
  if (t.joinable()) t.join();
}

void ReplicaService::TailLoop() {
  ReplicationBackoff backoff(options_.backoff);
  std::unique_lock<std::mutex> lock(tail_mu_);
  while (!stop_tail_) {
    lock.unlock();
    const Status st = Step();
    std::chrono::microseconds delay = options_.poll_interval;
    if (st.ok()) {
      backoff.Reset();
    } else if (st.IsDataLoss()) {
      return;  // sticky fail-stop; Health() carries the story
    } else {
      delay = backoff.Next();
      metrics_.RecordReplBackoffSleep();
    }
    lock.lock();
    if (tail_cv_.wait_for(lock, delay, [&] { return stop_tail_; })) break;
  }
}

uint64_t ReplicaService::PrimaryDurableGeneration() const {
  return std::max(primary_durable_.load(std::memory_order_acquire),
                  applied_.load(std::memory_order_acquire));
}

Status ReplicaService::Health() const {
  if (!failed_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_;
}

bool ReplicaService::Promoted() const {
  std::lock_guard<std::mutex> lock(step_mu_);
  return promoted_;
}

StatusOr<QueryResponse> ReplicaService::Query(
    Vertex s, Vertex t, const ReadOptions& options) const {
  const uint64_t applied = applied_.load(std::memory_order_acquire);
  const uint64_t primary =
      std::max(primary_durable_.load(std::memory_order_acquire), applied);
  ReadOptions inner_options = options;
  if (Status st = AdmitRead(options, applied, primary, &inner_options);
      !st.ok()) {
    return st;
  }
  auto resp = Inner()->Query(s, t, inner_options);
  if (!resp.ok()) return resp;
  // Staleness on a replica counts from the PRIMARY's durably-acked
  // generation, not from the replica's own tail — the number a freshness
  // SLO actually cares about.
  resp->staleness =
      primary > resp->generation ? primary - resp->generation : 0;
  return resp;
}

StatusOr<BatchQueryResponse> ReplicaService::QueryBatch(
    std::span<const VertexPair> pairs, const ReadOptions& options) const {
  const uint64_t applied = applied_.load(std::memory_order_acquire);
  const uint64_t primary =
      std::max(primary_durable_.load(std::memory_order_acquire), applied);
  ReadOptions inner_options = options;
  if (Status st = AdmitRead(options, applied, primary, &inner_options);
      !st.ok()) {
    return st;
  }
  auto resp = Inner()->QueryBatch(pairs, inner_options);
  if (!resp.ok()) return resp;
  resp->staleness =
      primary > resp->generation ? primary - resp->generation : 0;
  return resp;
}

Status ReplicaService::AdmitRead(const ReadOptions& options, uint64_t applied,
                                 uint64_t primary,
                                 ReadOptions* inner_options) const {
  if (Status st = Health(); !st.ok()) return st;
  if (options.min_generation > applied) {
    // The primary issued this token but the replica has not applied that
    // far yet — refuse instead of serving an answer the token disproves.
    metrics_.RecordRejected(Status::Code::kUnavailable);
    return Status::Unavailable(
        "replica applied through generation " + std::to_string(applied) +
        ", which trails min_generation " +
        std::to_string(options.min_generation) +
        "; retry, or read the primary");
  }
  if (options.consistency == Consistency::kBoundedStaleness) {
    const uint64_t floor =
        primary > options.max_lag ? primary - options.max_lag : 0;
    if (applied < floor) {
      metrics_.RecordRejected(Status::Code::kUnavailable);
      return Status::Unavailable(
          "replica too stale for max_lag " + std::to_string(options.max_lag) +
          ": applied generation " + std::to_string(applied) +
          " trails the primary's durably-acked " + std::to_string(primary));
    }
    // Map the primary-relative bound onto the inner engine, which sits
    // at `applied`: its snapshot may trail by at most applied - floor
    // before the caller's global bound is violated.
    inner_options->max_lag = applied - floor;
    inner_options->min_generation = std::max(options.min_generation, floor);
  }
  return Status::OK();
}

MetricsSnapshot ReplicaService::Metrics() const {
  MetricsSnapshot snap = Inner()->Metrics();
  const MetricsSnapshot own = metrics_.Snapshot();
  // The inner engine's rejection counters miss the replica's own
  // admission layer; fold it in.
  snap.rejected_invalid_argument += own.rejected_invalid_argument;
  snap.rejected_unavailable += own.rejected_unavailable;
  snap.rejected_not_supported += own.rejected_not_supported;
  snap.repl_ops_applied = own.repl_ops_applied;
  snap.repl_reconnects = own.repl_reconnects;
  snap.repl_backoff_sleeps = own.repl_backoff_sleeps;
  snap.repl_rebootstraps = own.repl_rebootstraps;
  snap.repl_failovers = own.repl_failovers;
  const uint64_t applied = applied_.load(std::memory_order_acquire);
  const uint64_t primary =
      std::max(primary_durable_.load(std::memory_order_acquire), applied);
  snap.replica_applied_generation = applied;
  snap.replica_lag = primary - applied;
  return snap;
}

StatusOr<std::unique_ptr<SpcService>> ReplicaService::Promote(
    const DurabilityOptions& durability,
    std::chrono::nanoseconds drain_timeout) {
  Stop();
  std::lock_guard<std::mutex> lock(step_mu_);
  if (promoted_) {
    return Status::InvalidArgument("replica already promoted");
  }
  if (Status st = Health(); !st.ok()) return st;
  // Drain: keep stepping (with backoff through transport faults) until
  // every durably-acked byte in the store has been applied. The store
  // outlives a crashed primary, so this terminates at exactly the last
  // generation the old primary acknowledged — no acked write lost, no
  // unacked write invented.
  ReplicationBackoff backoff(options_.backoff);
  const bool timed = drain_timeout >= std::chrono::nanoseconds{0};
  const auto deadline = timed ? SaturatingDeadline(drain_timeout)
                              : std::chrono::steady_clock::time_point{};
  for (;;) {
    Status st = StepLocked();
    if (st.IsDataLoss()) {
      {
        std::lock_guard<std::mutex> health_lock(health_mu_);
        health_ = st;
      }
      failed_.store(true, std::memory_order_release);
      return st;
    }
    const uint64_t applied = applied_.load(std::memory_order_acquire);
    if (st.ok() &&
        applied >= primary_durable_.load(std::memory_order_acquire)) {
      break;
    }
    if (timed && std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          "promote drain timed out at generation " + std::to_string(applied) +
          " of " +
          std::to_string(primary_durable_.load(std::memory_order_acquire)) +
          (st.ok() ? std::string() : "; last error: " + st.ToString()));
    }
    metrics_.RecordReplBackoffSleep();
    std::this_thread::sleep_for(backoff.Next());
  }
  // Reopen the drained state writable. The tailer is stopped and
  // step_mu_ is held, so the inner engine is quiescent — copying it is
  // a consistent capture at exactly the drained generation.
  const std::shared_ptr<SpcService> inner = Inner();
  Graph graph = inner->engine().graph();
  SpcIndex index = inner->engine().index();
  auto next = SpcService::OpenWithState(
      std::move(graph), std::move(index),
      applied_.load(std::memory_order_acquire), durability, options_.engine);
  if (!next.ok()) return next.status();
  promoted_ = true;
  metrics_.RecordFailover();
  return next;
}

}  // namespace dspc
