// ReplicaService: a hot-standby read replica fed by WAL shipping
// (DESIGN.md §13).
//
// The replica is the pull side of the replication seam: it bootstraps
// from the newest checkpoint a primary's WalShipper put in the Transport
// store, then tails the shipped WAL segments — parsing whole frames with
// ParseWalFrameWindow, pairing/chaining them through the same
// ReplayCursor recovery uses, and applying each committed op through
// ApplyReplayOp with the same byte-exact outcome cross-checks. The
// replica therefore holds, at every instant, a state the primary's
// recovery would reconstruct: generation-exact, never reflecting a write
// the primary has not durably acked.
//
// Honesty is the contract of the read surface:
//   - every response's `generation` is the replica's applied generation
//     (or an older snapshot's, under kSnapshot), and `staleness` is
//     rewritten to count generations behind the PRIMARY's durably-acked
//     generation — not behind the replica's own tail;
//   - kBoundedStaleness{max_lag} is enforced against that primary
//     generation: a replica more than max_lag behind refuses the read
//     (kUnavailable) instead of serving it and lying about freshness;
//   - min_generation (read-your-writes tokens minted by the primary)
//     refuses with kUnavailable until the replica has applied that far.
//
// Robustness: every transport fault is retried with capped exponential
// backoff + jitter; falling behind the store's retention horizon (the
// primary retired a segment the replica still needed) triggers an
// automatic re-bootstrap from the newer checkpoint — invisible to
// readers except as a generation jump forward. Divergence (a replayed
// op whose outcome contradicts the journal — primary and replica built
// different states from the same bytes) is kDataLoss and STICKY: the
// replica fail-stops its tail and every subsequent read reports it,
// because serving from a state known to disagree with the primary is
// worse than serving nothing.
//
// Failover: Promote() stops tailing, drains every shipped byte until the
// applied generation equals the primary's last durably-acked generation,
// and opens a writable SpcService (OpenWithState) on a fresh durability
// directory at exactly that generation — no acked write lost, no
// unacked write invented.

#ifndef DSPC_API_REPLICA_SERVICE_H_
#define DSPC_API_REPLICA_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dspc/api/spc_service.h"
#include "dspc/common/status.h"
#include "dspc/common/types.h"
#include "dspc/persist/replication.h"

namespace dspc {

/// Configuration for ReplicaService::Open.
struct ReplicaOptions {
  /// The store the primary's WalShipper pushes into. Required; must
  /// outlive the replica.
  Transport* transport = nullptr;

  /// Engine options for the serving index rebuilt from shipped state.
  /// The same restriction as durable primaries applies: lazy rebuild
  /// policies are kNotSupported (a policy rebuild would advance the
  /// generation outside the shipped log and break the chain).
  DynamicSpcOptions engine;

  /// Background tailer pacing: poll this often when caught up, back off
  /// (capped, jittered) on transport faults.
  std::chrono::microseconds poll_interval{2000};
  ReplicationBackoff::Options backoff;

  /// Start the background tailer inside Open. With false the replica
  /// only advances when Step() is called — the deterministic mode the
  /// fault-matrix tests drive.
  bool start_tailer = true;

  /// How long Open keeps retrying the initial bootstrap when the store
  /// is empty or faulting (kNoTimeout = forever). The common cause is
  /// benign — the primary's shipper simply has not published yet.
  std::chrono::nanoseconds bootstrap_timeout = kNoTimeout;
};

/// A read-only serving replica over a replication Transport. All methods
/// are thread-safe; reads serve concurrently with the background tailer.
class ReplicaService {
 public:
  /// Bootstraps from the newest shipped checkpoint (retrying with
  /// backoff until `bootstrap_timeout`) and, by default, starts tailing.
  /// kInvalidArgument for a missing transport or lazy-rebuild engine
  /// options; kDeadlineExceeded when nothing bootstrappable appeared in
  /// time.
  static StatusOr<std::unique_ptr<ReplicaService>> Open(
      const ReplicaOptions& options);

  /// Stops the tailer. The transport and any promoted service outlive
  /// the replica independently.
  ~ReplicaService();

  // --- reads (the SpcService read surface, replica-honest) ----------------

  StatusOr<QueryResponse> Query(Vertex s, Vertex t,
                                const ReadOptions& options = {}) const;
  StatusOr<BatchQueryResponse> QueryBatch(
      std::span<const VertexPair> pairs,
      const ReadOptions& options = {}) const;

  // --- tailing ------------------------------------------------------------

  /// One tailing pass: refresh ShipState, apply every complete shipped
  /// frame from the current position, advance across finished segments,
  /// re-bootstrap if the tail fell behind store retention. Single
  /// attempt, no sleeping — kUnavailable/kIOError are retryable and the
  /// background tailer backs off and re-enters; kDataLoss (divergence)
  /// is sticky. Safe to call concurrently with reads; serialized with
  /// other Step/Promote calls.
  Status Step();

  /// Starts/stops the background tailer (idempotent; Start is a no-op
  /// after Promote).
  void Start();
  void Stop();

  // --- observability ------------------------------------------------------

  /// Generation the replica has applied through. Lock-free.
  uint64_t AppliedGeneration() const {
    return applied_.load(std::memory_order_acquire);
  }

  /// The primary's durably-acked generation as of the last fetched
  /// ShipState (never below AppliedGeneration — applying proves acking).
  uint64_t PrimaryDurableGeneration() const;

  /// OK, or the sticky divergence error once the tail fail-stopped.
  Status Health() const;

  /// The inner engine's metrics plus this replica's replication
  /// counters, with `replica_applied_generation` / `replica_lag` gauges
  /// filled in. A re-bootstrap swaps the inner engine, so engine-side
  /// counters restart from zero; the replication counters are cumulative.
  MetricsSnapshot Metrics() const;

  // --- failover -----------------------------------------------------------

  /// Promotes this replica to a writable durable primary: stops the
  /// tailer, drains the transport until the applied generation reaches
  /// the primary's last durably-acked generation (retrying faults with
  /// backoff, bounded by `drain_timeout`), and opens a fresh durable
  /// SpcService on `durability` at exactly that generation via
  /// OpenWithState. On success the replica itself is frozen (reads still
  /// serve its final state; Step/Start refuse) and the returned service
  /// is the new primary. kDataLoss if the drain surfaces divergence,
  /// kDeadlineExceeded if the store cannot be drained in time,
  /// kInvalidArgument on a second Promote.
  StatusOr<std::unique_ptr<SpcService>> Promote(
      const DurabilityOptions& durability,
      std::chrono::nanoseconds drain_timeout = kNoTimeout);

  bool Promoted() const;

 private:
  explicit ReplicaService(const ReplicaOptions& options);

  /// Fetches state + checkpoint and (re)builds the inner service from
  /// it; resets the tail cursor to the checkpoint's segment. Caller
  /// holds step_mu_.
  Status BootstrapLocked(const ShipState& state);

  /// Step() body. Caller holds step_mu_.
  Status StepLocked();

  /// Applies the parsed records of one fetched window. Caller holds
  /// step_mu_.
  Status ApplyWindowLocked(std::vector<WalRecord> records);

  /// Read admission: sticky-health check, min_generation floor, and the
  /// kBoundedStaleness primary-relative bound; on OK, *inner_options is
  /// the options to forward to the inner engine.
  Status AdmitRead(const ReadOptions& options, uint64_t applied,
                   uint64_t primary, ReadOptions* inner_options) const;

  std::shared_ptr<SpcService> Inner() const;
  void TailLoop();

  const ReplicaOptions options_;

  /// Serializes tailing (Step, bootstrap, Promote) — never held by
  /// reads.
  mutable std::mutex step_mu_;
  std::optional<ReplayCursor> cursor_;  ///< under step_mu_
  uint64_t tail_seq_ = 0;               ///< segment being tailed
  uint64_t tail_offset_ = 0;            ///< file bytes of it consumed
  bool last_failed_ = false;  ///< previous Step failed (reconnect count)
  bool promoted_ = false;     ///< under step_mu_

  /// Sticky divergence latch, on its own tiny lock so a read's health
  /// check never waits behind a tailing pass holding step_mu_.
  mutable std::mutex health_mu_;
  Status health_;  ///< under health_mu_; set once, before failed_
  std::atomic<bool> failed_{false};

  /// The serving engine rebuilt from shipped state. shared_ptr so reads
  /// pin the current engine without blocking a concurrent re-bootstrap
  /// swap. Guarded by inner_mu_ for the pointer itself.
  mutable std::mutex inner_mu_;
  std::shared_ptr<SpcService> inner_;

  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> primary_durable_{0};

  /// Replica-side replication counters (ops applied, reconnects,
  /// backoffs, re-bootstraps, failovers) and read-refusal counts for the
  /// replica's own admission layer; merged into Metrics().
  mutable ServiceMetrics metrics_;

  // Background tailer.
  std::mutex tail_mu_;
  std::condition_variable tail_cv_;
  bool stop_tail_ = false;
  std::thread tail_;
};

}  // namespace dspc

#endif  // DSPC_API_REPLICA_SERVICE_H_
