// MappedReaderService: the reader side of the multi-process serving tier
// (DESIGN.md §14).
//
// A stateless read-only facade over a SnapshotPublisher directory: it
// maps the current snap-<generation>.arena with MappedArena (queries run
// as views straight over the mmap — zero per-query deserialization or
// label copying, page-cache bytes shared across every reader process)
// and adopts newer generations by *remapping*: Refresh() maps the new
// file, swaps the served snapshot pointer, and lets the old mapping die
// when the last in-flight query's shared_ptr drops — queries never
// block on adoption and never observe a torn switch.
//
// Retention protocol: the reader keeps a pin-<owner> file naming the
// generation it serves, so the writer's GC never unlinks an arena this
// reader may still need to re-map (restart, late adoption). During
// adoption the pin moves to the new generation *before* the map; the
// window where a GC could unlink the new arena between the reader's
// PUBSTATE read and its pin landing is closed by re-checking the file
// still exists after the pin is durable and retrying against a fresh
// PUBSTATE if not. In-flight queries on the old generation are safe
// regardless: a posix mapping survives unlink, and published arenas are
// never truncated in place.
//
// Consistency lattice (api/spc_service.h), honestly reported:
//
//   kFresh             kNotSupported — there is no live index here.
//   kSnapshot          serves the adopted mapping without any I/O;
//                      staleness is computed against the publisher
//                      generation last observed (adoption or poll), so
//                      it can understate between polls but the served
//                      generation is always exact. A min_generation the
//                      mapping has not reached is refused (kUnavailable)
//                      — kSnapshot never blocks, and remapping is I/O.
//   kBoundedStaleness  re-reads PUBSTATE for the *current* publisher
//                      generation, attempts one inline Refresh() if the
//                      mapping is out of bounds, and refuses with
//                      kUnavailable if still behind — a bounded answer
//                      is never fabricated from a stale bound.
//
// Thread-safety: all methods may be called concurrently; Refresh() and
// the optional poll thread serialize among themselves and never block
// queries (the snapshot swap is a pointer move under a short lock).

#ifndef DSPC_API_MAPPED_READER_SERVICE_H_
#define DSPC_API_MAPPED_READER_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>

#include "dspc/api/service_metrics.h"
#include "dspc/api/spc_service.h"
#include "dspc/common/status.h"
#include "dspc/common/types.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/persist/env.h"
#include "dspc/persist/snapshot_publisher.h"

namespace dspc {

struct MappedReaderOptions {
  FileSystem* fs = nullptr;  ///< null = FileSystem::Default()

  /// Retention-pin owner name ([A-Za-z0-9._-]+), unique per reader
  /// process. Empty = "pid<pid>". The pin is replaced on every adoption
  /// and removed at destruction.
  std::string pin_owner;

  /// Write retention pins (default). Off, the reader still serves
  /// correctly — already-mapped bytes survive unlink — but the writer's
  /// GC may reclaim its generation, costing it re-map-ability and
  /// forcing the next adoption to jump to a newer generation.
  bool write_pins = true;

  /// Poll PUBSTATE and adopt new generations on a background thread
  /// every `poll_interval`. Zero (default) = no thread; the owner calls
  /// Refresh() explicitly.
  std::chrono::milliseconds poll_interval{0};
};

class MappedReaderService {
 public:
  /// Opens the publish directory and adopts the current generation.
  /// kNotFound when nothing has been published yet (retry later);
  /// kCorruption/kDataLoss/kIOError propagate from the manifest and
  /// arena validation.
  static StatusOr<std::unique_ptr<MappedReaderService>> Open(
      const std::string& dir, MappedReaderOptions options = {});

  /// Stops the poll thread and removes this reader's retention pin.
  ~MappedReaderService();

  /// Polls PUBSTATE and adopts a newer generation if one is published
  /// (pin → map → swap). OK and a no-op when already current. Safe to
  /// call concurrently with queries and with itself.
  Status Refresh();

  /// SPC query against the mapped snapshot. Never blocks; see the file
  /// comment for the per-mode contract. QueryResponse::served_from is
  /// always kSnapshot.
  StatusOr<QueryResponse> Query(Vertex s, Vertex t,
                                const ReadOptions& options = {
                                    .consistency = Consistency::kSnapshot})
      const;

  /// Batched queries, all answered from one mapped generation.
  StatusOr<BatchQueryResponse> QueryBatch(
      std::span<const VertexPair> pairs,
      const ReadOptions& options = {.consistency = Consistency::kSnapshot})
      const;

  /// Generation of the mapped snapshot being served.
  uint64_t Generation() const;

  /// Publisher generation last observed (adoption, poll, or a bounded
  /// read's PUBSTATE check) — the staleness reference for kSnapshot.
  uint64_t PublisherGeneration() const {
    return publisher_generation_.load(std::memory_order_relaxed);
  }

  /// WAL sequence stamped into the adopted arena by the writer.
  uint64_t WalSeq() const;

  /// Vertex-id space of the mapped snapshot.
  size_t NumVertices() const;

  MetricsSnapshot Metrics() const { return metrics_.Snapshot(); }

  const std::string& dir() const { return dir_; }
  const std::string& pin_owner() const { return pin_owner_; }

 private:
  /// One adopted generation; queries copy the shared_ptr and serve off
  /// it, so a swap never tears an in-flight read and the mapping lives
  /// until the last reader of it finishes.
  struct Adopted {
    std::shared_ptr<const FlatSpcIndex> index;
    uint64_t generation = 0;
    uint64_t wal_seq = 0;
  };

  MappedReaderService(std::string dir, MappedReaderOptions options);

  std::shared_ptr<const Adopted> Current() const;

  /// Refresh body; const (with mutable adoption state) because a bounded
  /// read — itself const — may trigger an inline adoption attempt.
  Status RefreshNow() const;

  /// The adoption body (pin → exists-check → map → swap), serialized by
  /// refresh_mu_ (held by the caller). A no-op when PUBSTATE does not
  /// advance past the adopted generation.
  Status RefreshLocked() const;

  /// Shared mode routing for Query/QueryBatch: on OK, *cur is the
  /// snapshot to serve and *staleness its honest lag. Counts rejections.
  Status RouteMapped(const ReadOptions& options,
                     std::shared_ptr<const Adopted>* cur,
                     uint64_t* staleness) const;

  void PollLoop();

  FileSystem* fs_;
  const std::string dir_;
  const MappedReaderOptions options_;
  std::string pin_owner_;

  mutable std::mutex mu_;  ///< guards current_ (pointer swap/copy only)
  mutable std::shared_ptr<const Adopted> current_;

  /// Serializes adoption I/O; never held by reads.
  mutable std::mutex refresh_mu_;
  mutable std::atomic<uint64_t> publisher_generation_{0};

  mutable ServiceMetrics metrics_;

  std::thread poll_thread_;
  std::mutex poll_mu_;
  std::condition_variable poll_cv_;
  bool stop_poll_ = false;  ///< under poll_mu_
};

}  // namespace dspc

#endif  // DSPC_API_MAPPED_READER_SERVICE_H_
