#include "dspc/api/spc_service.h"

#include <algorithm>
#include <string>
#include <utility>

namespace dspc {

namespace {

// Error construction is kept out of line (and out of the serving hot
// path): admission failures build strings, served requests never do.
[[gnu::cold, gnu::noinline]] Status BadVertex(const char* what, Vertex v,
                                              size_t n) {
  return Status::InvalidArgument(std::string(what) + " vertex id " +
                                 std::to_string(v) + " outside [0, " +
                                 std::to_string(n) + ")");
}

[[gnu::cold, gnu::noinline]] Status FutureMinGeneration(uint64_t min_gen,
                                                        uint64_t gen) {
  return Status::InvalidArgument(
      "min_generation " + std::to_string(min_gen) +
      " exceeds the current generation " + std::to_string(gen) +
      " — not a token issued by this service");
}

}  // namespace

SpcService::SpcService(Graph graph, const DynamicSpcOptions& options)
    : engine_(std::move(graph), options) {}

SpcService::SpcService(Graph graph, SpcIndex index,
                       const DynamicSpcOptions& options)
    : engine_(std::move(graph), std::move(index), options) {}

Status SpcService::ValidateVertex(Vertex v, const char* what) const {
  const size_t n = engine_.NumVertices();
  if (static_cast<size_t>(v) < n) return Status::OK();
  return BadVertex(what, v, n);
}

/// The kSnapshot case of RouteRead, out of line: it is the only mode
/// with refusal (kUnavailable) outcomes, and keeping it out of RouteRead
/// keeps the kFresh/kBoundedStaleness hot path small enough to inline.
Status SpcService::RouteSnapshotRead(const ReadOptions& options,
                                     size_t queries, Vertex max_vertex,
                                     uint64_t gen,
                                     SnapshotManager::Pinned* pin) const {
  // With snapshots disabled no publish can ever happen: that is a
  // configuration error, not a transient one — kUnavailable would invite
  // a retry loop that can never succeed.
  if (!engine_.options().snapshot.enabled) {
    return Status::NotSupported(
        "kSnapshot reads need snapshots enabled on this service "
        "(SnapshotOptions::enabled)");
  }
  // Never block: pin whatever is published. Under kBackground the pin
  // still charges the staleness budget so the worker keeps the snapshot
  // converging even for pure-snapshot workloads; under kSync/kManual
  // Acquire could rebuild inline or withhold a stale pin, so take the
  // raw (free) pin instead.
  const bool background =
      engine_.snapshots()->policy() == RefreshPolicy::kBackground;
  *pin = background ? engine_.AcquireSnapshot(gen, queries)
                    : engine_.PinSnapshot();
  if (!*pin) {
    // Under kSync/kManual nothing publishes until some other traffic does
    // (a budget-crossing kFresh read, or an explicit refresh), so a pure
    // kSnapshot client must warm the snapshot once — say so instead of
    // inviting a blind retry.
    return Status::Unavailable(
        "kSnapshot read with no published snapshot; warm one with "
        "WaitForSnapshot({Generation()}) first (under kSync, kFresh "
        "traffic also publishes eventually)");
  }
  if (pin->generation < options.min_generation) {
    return Status::Unavailable(
        "published snapshot at generation " +
        std::to_string(pin->generation) + " trails min_generation " +
        std::to_string(options.min_generation) +
        "; retry, WaitForSnapshot, or relax to kFresh");
  }
  if (max_vertex >= (*pin)->NumVertices()) {
    return Status::Unavailable(
        "published snapshot predates vertex " + std::to_string(max_vertex) +
        "; retry after the next refresh or relax to kFresh");
  }
  engine_.YieldForMaintenance(gen, pin->generation);
  return Status::OK();
}

Status SpcService::RouteRead(const ReadOptions& options, size_t queries,
                             Vertex max_vertex, uint64_t* generation,
                             SnapshotManager::Pinned* pin) const {
  const uint64_t gen = engine_.Generation();
  *generation = gen;
  if (options.min_generation > gen) [[unlikely]] {
    return FutureMinGeneration(options.min_generation, gen);
  }

  if (options.consistency == Consistency::kSnapshot) {
    return RouteSnapshotRead(options, queries, max_vertex, gen, pin);
  }

  // kFresh / kBoundedStaleness: acquire (budget-charging, so rebuilds
  // keep getting scheduled), serve the pin when it satisfies the mode's
  // bound, ride the live index otherwise — which is current by
  // definition and therefore satisfies any valid min_generation and any
  // lag bound.
  auto acquired = engine_.AcquireSnapshot(gen, queries);
  if (acquired && max_vertex < acquired->NumVertices()) {
    if (acquired.generation >= gen ||
        (options.consistency == Consistency::kBoundedStaleness &&
         gen - acquired.generation <= options.max_lag &&
         acquired.generation >= options.min_generation)) {
      // Same pacing as the engine's own query path: every snapshot-served
      // read donates a timeslice while a writer is mid-update (or the
      // snapshot trails too far), current pin or not.
      engine_.YieldForMaintenance(gen, acquired.generation);
      *pin = std::move(acquired);
    }
  }
  return Status::OK();
}

StatusOr<QueryResponse> SpcService::Query(Vertex s, Vertex t,
                                          const ReadOptions& options) const {
  // One admission check for both endpoints: this sits on the hot path,
  // so read the id-space bound once.
  const size_t n = engine_.NumVertices();
  if (static_cast<size_t>(s) >= n || static_cast<size_t>(t) >= n)
      [[unlikely]] {
    return BadVertex(static_cast<size_t>(s) >= n ? "source" : "target",
                     static_cast<size_t>(s) >= n ? s : t, n);
  }

  uint64_t generation = 0;
  SnapshotManager::Pinned pin;
  if (Status st = RouteRead(options, 1, std::max(s, t), &generation, &pin);
      !st.ok()) [[unlikely]] {
    return st;
  }

  // Responses are built fully formed in the return slot (no default
  // construction + field-by-field overwrite): this path runs per query.
  if (pin) {
    return StatusOr<QueryResponse>(
        std::in_place, pin->Query(s, t), pin.generation,
        generation > pin.generation ? generation - pin.generation : 0,
        ServedFrom::kSnapshot);
  }
  return StatusOr<QueryResponse>(std::in_place, engine_.QueryLive(s, t),
                                 generation, uint64_t{0},
                                 ServedFrom::kLiveIndex);
}

StatusOr<BatchQueryResponse> SpcService::QueryBatch(
    std::span<const VertexPair> pairs, const ReadOptions& options) const {
  const size_t n = engine_.NumVertices();
  Vertex max_vertex = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto [s, t] = pairs[i];
    if (static_cast<size_t>(s) >= n || static_cast<size_t>(t) >= n) {
      const Status bad =
          BadVertex(static_cast<size_t>(s) >= n ? "source" : "target",
                    static_cast<size_t>(s) >= n ? s : t, n);
      return Status::InvalidArgument("pair " + std::to_string(i) + ": " +
                                     bad.message());
    }
    max_vertex = std::max({max_vertex, s, t});
  }

  uint64_t generation = 0;
  SnapshotManager::Pinned pin;
  if (Status st =
          RouteRead(options, pairs.size(), max_vertex, &generation, &pin);
      !st.ok()) {
    return st;
  }

  StatusOr<BatchQueryResponse> out(std::in_place);
  if (pin) {
    out->results = pin->QueryManyParallel(pairs, options.threads);
    out->generation = pin.generation;
    out->staleness =
        generation > pin.generation ? generation - pin.generation : 0;
    out->served_from = ServedFrom::kSnapshot;
  } else {
    out->results = engine_.BatchQueryLive(pairs, options.threads);
    out->generation = generation;
    out->served_from = ServedFrom::kLiveIndex;
  }
  return out;
}

StatusOr<UpdateResponse> SpcService::ApplyUpdates(
    std::span<const Update> updates) {
  const size_t n = engine_.NumVertices();
  for (size_t i = 0; i < updates.size(); ++i) {
    const Edge& e = updates[i].edge;
    if (static_cast<size_t>(e.u) >= n || static_cast<size_t>(e.v) >= n) {
      const Status bad =
          BadVertex("edge", static_cast<size_t>(e.u) >= n ? e.u : e.v, n);
      return Status::InvalidArgument("update " + std::to_string(i) + ": " +
                                     bad.message());
    }
  }
  UpdateResponse resp;
  resp.stats = engine_.ApplyBatch(updates);
  resp.token.generation = engine_.Generation();
  return resp;
}

StatusOr<UpdateResponse> SpcService::InsertEdge(Vertex u, Vertex v) {
  const Update update = Update::Insert(u, v);
  return ApplyUpdates({&update, 1});
}

StatusOr<UpdateResponse> SpcService::RemoveEdge(Vertex u, Vertex v) {
  const Update update = Update::Delete(u, v);
  return ApplyUpdates({&update, 1});
}

AddVertexResponse SpcService::AddVertex() {
  AddVertexResponse resp;
  resp.vertex = engine_.AddVertex();
  resp.token.generation = engine_.Generation();
  return resp;
}

StatusOr<UpdateResponse> SpcService::RemoveVertex(Vertex v) {
  if (Status st = ValidateVertex(v, "vertex"); !st.ok()) return st;
  UpdateResponse resp;
  resp.stats = engine_.RemoveVertex(v);
  resp.token.generation = engine_.Generation();
  return resp;
}

Status SpcService::WaitForSnapshot(WriteToken token) const {
  if (!engine_.options().snapshot.enabled) {
    return Status::NotSupported(
        "snapshots are disabled on this service (SnapshotOptions::enabled)");
  }
  if (token.generation > engine_.Generation()) {
    return Status::InvalidArgument(
        "token generation " + std::to_string(token.generation) +
        " exceeds the current generation — not issued by this service");
  }
  const auto pin = engine_.AwaitSnapshotAtLeast(token.generation);
  if (!pin || pin.generation < token.generation) {
    return Status::Unavailable(
        "snapshot manager stopped before reaching generation " +
        std::to_string(token.generation));
  }
  return Status::OK();
}

}  // namespace dspc
