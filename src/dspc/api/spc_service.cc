#include "dspc/api/spc_service.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace dspc {

// ServiceMetrics' read cube (service_metrics.h) folds the raw values of
// these enums, which it only sees as opaque declarations — pin them.
static_assert(static_cast<size_t>(ServedFrom::kSnapshot) == 0 &&
                  static_cast<size_t>(ServedFrom::kLiveIndex) == 1,
              "read cube encodes ServedFrom as {snapshot=0, live=1}");
static_assert(static_cast<size_t>(Consistency::kFresh) == 0 &&
                  static_cast<size_t>(Consistency::kSnapshot) == 1 &&
                  static_cast<size_t>(Consistency::kBoundedStaleness) == 2,
              "read cube indexes queries_by_mode by Consistency's value");

namespace {

// Error construction is kept out of line (and out of the serving hot
// path): admission failures build strings, served requests never do.
[[gnu::cold, gnu::noinline]] Status BadVertex(const char* what, Vertex v,
                                              size_t n) {
  return Status::InvalidArgument(std::string(what) + " vertex id " +
                                 std::to_string(v) + " outside [0, " +
                                 std::to_string(n) + ")");
}

[[gnu::cold, gnu::noinline]] Status FutureMinGeneration(uint64_t min_gen,
                                                        uint64_t gen) {
  return Status::InvalidArgument(
      "min_generation " + std::to_string(min_gen) +
      " exceeds the current generation " + std::to_string(gen) +
      " — not a token issued by this service");
}

[[gnu::cold, gnu::noinline]] Status LiveReadDeadlineExceeded() {
  return Status::DeadlineExceeded(
      "live-index read could not acquire the lock before the deadline "
      "(a writer holds it); retry, extend the timeout, or relax to "
      "kSnapshot/kBoundedStaleness");
}

/// Absolute deadline of a timed call; callers guard on timeout >= 0
/// (kNoTimeout never reaches this). Saturates instead of overflowing so
/// timeout = nanoseconds::max() means "wait practically forever", not a
/// wrapped-into-the-past instant refusal.
std::chrono::steady_clock::time_point DeadlineFor(
    std::chrono::nanoseconds timeout) {
  const auto now = std::chrono::steady_clock::now();
  if (timeout >= std::chrono::steady_clock::time_point::max() - now) {
    return std::chrono::steady_clock::time_point::max();
  }
  return now + timeout;
}

/// Sampled read-latency timing (DESIGN.md §10). Two steady_clock reads
/// per timed call would blow the service's ~2% overhead budget on the
/// per-query hot path, so single queries time 1-in-64 calls (a
/// thread_local counter decides; uniform sampling leaves percentiles
/// unbiased) while batches — whose work amortizes the clocks — always
/// time. Armed==false costs one increment and one predictable branch.
struct LatencyTimer {
  explicit LatencyTimer(bool arm) : armed(arm) {
    if (armed) [[unlikely]] {
      start = std::chrono::steady_clock::now();
    }
  }
  void Finish(ServiceMetrics* metrics, Consistency mode) const {
    if (!armed) [[likely]] {
      return;
    }
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start);
    metrics->RecordReadLatency(mode, static_cast<uint64_t>(ns.count()));
  }
  bool armed;
  std::chrono::steady_clock::time_point start;
};

bool SampleReadLatency() {
  thread_local uint32_t tick = 0;
  return (++tick & 63u) == 0;
}

}  // namespace

SpcService::SpcService(Graph graph, const DynamicSpcOptions& options)
    : engine_(std::move(graph), options) {
  if (engine_.options().pair_cache.enabled) {
    pair_cache_ = std::make_unique<PairCache>(engine_.options().pair_cache);
  }
}

SpcService::SpcService(Graph graph, SpcIndex index,
                       const DynamicSpcOptions& options)
    : engine_(std::move(graph), std::move(index), options) {
  if (engine_.options().pair_cache.enabled) {
    pair_cache_ = std::make_unique<PairCache>(engine_.options().pair_cache);
  }
}

SpcService::~SpcService() {
  if (fs_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(dur_mu_);
    stop_checkpointer_ = true;
  }
  checkpoint_cv_.notify_all();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  if (wal_) (void)wal_->Close();  // clean close syncs: shutdown ≠ crash
}

StatusOr<std::unique_ptr<SpcService>> SpcService::Open(
    Graph bootstrap, const DurabilityOptions& durability,
    const DynamicSpcOptions& options) {
  if (durability.dir.empty()) {
    return Status::InvalidArgument("DurabilityOptions::dir must be set");
  }
  if (options.rebuild_after_updates != 0 ||
      options.rebuild_growth_factor != 0.0) {
    return Status::NotSupported(
        "durable serving requires the lazy rebuild policy disabled: a "
        "policy rebuild advances the generation outside the WAL, which "
        "would break replay determinism");
  }
  FileSystem* fs =
      durability.fs != nullptr ? durability.fs : FileSystem::Default();
  if (Status st = fs->CreateDir(durability.dir); !st.ok()) return st;
  RecoveryPlan plan;
  if (Status st = PlanRecovery(fs, durability.dir, &plan); !st.ok()) {
    return st;
  }

  std::unique_ptr<SpcService> service;
  if (plan.has_checkpoint) {
    DynamicSpcOptions engine_options = options;
    engine_options.initial_generation = plan.checkpoint.generation;
    service.reset(new SpcService(std::move(plan.checkpoint.graph),
                                 plan.checkpoint.index.Unpack(),
                                 engine_options));
    for (const ReplayOp& op : plan.ops) {
      if (Status st = ApplyReplayOp(&service->engine_, op); !st.ok()) {
        return st;
      }
    }
  } else {
    service.reset(new SpcService(std::move(bootstrap), options));
  }
  service->recovery_report_ = plan.report;
  if (!plan.has_checkpoint) {
    service->recovery_report_.recovered_generation = service->Generation();
  }
  service->metrics_.RecordRecovery(plan.report.replayed,
                                   plan.report.truncated_tail_bytes);
  service->fs_ = fs;
  if (Status st = service->StartDurability(durability, plan); !st.ok()) {
    return st;
  }
  return service;
}

StatusOr<std::unique_ptr<SpcService>> SpcService::OpenWithState(
    Graph graph, SpcIndex index, uint64_t generation,
    const DurabilityOptions& durability, const DynamicSpcOptions& options) {
  if (durability.dir.empty()) {
    return Status::InvalidArgument("DurabilityOptions::dir must be set");
  }
  if (options.rebuild_after_updates != 0 ||
      options.rebuild_growth_factor != 0.0) {
    return Status::NotSupported(
        "durable serving requires the lazy rebuild policy disabled: a "
        "policy rebuild advances the generation outside the WAL, which "
        "would break replay determinism");
  }
  FileSystem* fs =
      durability.fs != nullptr ? durability.fs : FileSystem::Default();
  if (Status st = fs->CreateDir(durability.dir); !st.ok()) return st;
  RecoveryPlan plan;
  if (Status st = PlanRecovery(fs, durability.dir, &plan); !st.ok()) {
    return st;
  }
  // Adopting external state over an existing durable lineage would
  // silently discard whatever that lineage acknowledged. PlanRecovery
  // already refuses the dangerous MANIFEST-less shapes with kDataLoss;
  // anything it would recover (a MANIFEST) is equally off limits here.
  if (plan.has_checkpoint) {
    return Status::InvalidArgument(
        "target directory already holds durable state (recover it with "
        "SpcService::Open, or point OpenWithState at a fresh directory): " +
        durability.dir);
  }
  DynamicSpcOptions engine_options = options;
  engine_options.initial_generation = generation;
  std::unique_ptr<SpcService> service(
      new SpcService(std::move(graph), std::move(index), engine_options));
  service->recovery_report_ = plan.report;
  service->recovery_report_.recovered_generation = generation;
  service->fs_ = fs;
  if (Status st = service->StartDurability(durability, plan); !st.ok()) {
    return st;
  }
  return service;
}

StatusOr<std::unique_ptr<WalShipper>> SpcService::NewShipper(
    Transport* transport, WalShipper::Options base) {
  if (fs_ == nullptr) {
    return Status::NotSupported(
        "WAL shipping needs a durable service (SpcService::Open)");
  }
  if (transport == nullptr) {
    return Status::InvalidArgument("NewShipper requires a transport");
  }
  WalShipper::Options options = std::move(base);
  options.transport = transport;
  options.retention = checkpointer_.get();
  options.synced_tip = [this] { return WalSyncedTip(); };
  if (!options.on_checkpoint_shipped) {
    options.on_checkpoint_shipped = [this] {
      metrics_.RecordCheckpointShipped();
    };
  }
  if (!options.on_segment_started) {
    options.on_segment_started = [this] { metrics_.RecordSegmentShipped(); };
  }
  if (!options.on_bytes_shipped) {
    options.on_bytes_shipped = [this](uint64_t bytes) {
      metrics_.RecordShippedBytes(bytes);
    };
  }
  if (!options.on_reconnect) {
    options.on_reconnect = [this] { metrics_.RecordReplReconnect(); };
  }
  if (!options.on_backoff_sleep) {
    options.on_backoff_sleep = [this] { metrics_.RecordReplBackoffSleep(); };
  }
  return std::make_unique<WalShipper>(fs_, dur_options_.dir, options);
}

std::pair<uint64_t, uint64_t> SpcService::WalSyncedTip() {
  std::lock_guard<std::mutex> lock(dur_mu_);
  if (!wal_) return {0, 0};
  return {wal_->seq(), wal_->SyncedBytes()};
}

Status SpcService::StartDurability(const DurabilityOptions& durability,
                                   const RecoveryPlan& plan) {
  const uint64_t wal_seq = plan.next_wal_seq;
  dur_options_ = durability;
  dur_options_.fs = fs_;
  checkpointer_ = std::make_unique<Checkpointer>(fs_, durability.dir);
  WalWriter::Options wal_options;
  wal_options.sync = durability.sync;
  wal_options.flush_interval = durability.flush_interval;
  wal_options.on_sync = [this] { metrics_.RecordWalSync(); };
  auto wal = WalWriter::Create(
      fs_, durability.dir + "/" + WalSegmentFileName(wal_seq), wal_seq,
      engine_.Generation(), wal_options);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(*wal);
  // Publish a checkpoint of the just-opened state so the directory is
  // immediately self-contained: replayed segments (or a crashed first
  // open's strays) are covered and garbage-collected right here, and
  // WAL growth restarts from zero after every recovery. The fallback
  // this publish retains is the checkpoint recovery actually loaded —
  // NOT the on-disk MANIFEST's current entry, which after a fallback
  // recovery names exactly the corrupt checkpoint (trusting it would
  // make GC delete the proven-good one and retain the unreadable one).
  const FlatSpcIndex flat(engine_.index());
  CheckpointRef validated_prev;
  if (plan.has_checkpoint) {
    validated_prev.generation = plan.checkpoint.generation;
    validated_prev.wal_seq = plan.checkpoint_wal_seq;
  }
  if (Status st = checkpointer_->Publish(
          engine_.graph(), flat, engine_.Generation(), wal_seq,
          plan.has_checkpoint ? &validated_prev : nullptr);
      !st.ok()) {
    return st;
  }
  metrics_.RecordCheckpoint();
  if (dur_options_.checkpoint_wal_bytes != 0 ||
      dur_options_.checkpoint_wal_records != 0) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  return Status::OK();
}

Status SpcService::ValidateVertex(Vertex v, const char* what) const {
  const size_t n = engine_.NumVertices();
  if (static_cast<size_t>(v) < n) return Status::OK();
  metrics_.RecordRejected(Status::Code::kInvalidArgument);
  return BadVertex(what, v, n);
}

/// The kSnapshot case of RouteRead, out of line: it is the only mode
/// with refusal (kUnavailable) outcomes, and keeping it out of RouteRead
/// keeps the kFresh/kBoundedStaleness hot path small enough to inline.
Status SpcService::RouteSnapshotRead(const ReadOptions& options,
                                     size_t queries, Vertex max_vertex,
                                     uint64_t gen,
                                     SnapshotManager::Pinned* pin) const {
  // With snapshots disabled no publish can ever happen: that is a
  // configuration error, not a transient one — kUnavailable would invite
  // a retry loop that can never succeed.
  if (!engine_.options().snapshot.enabled) {
    return Status::NotSupported(
        "kSnapshot reads need snapshots enabled on this service "
        "(SnapshotOptions::enabled)");
  }
  // Never block: pin whatever is published. Under kBackground the pin
  // still charges the staleness budget so the worker keeps the snapshot
  // converging even for pure-snapshot workloads; under kSync/kManual
  // Acquire could rebuild inline or withhold a stale pin, so take the
  // raw (free) pin instead.
  const bool background =
      engine_.snapshots()->policy() == RefreshPolicy::kBackground;
  *pin = background ? engine_.AcquireSnapshot(gen, queries)
                    : engine_.PinSnapshot();
  if (!*pin) {
    // Under kSync/kManual nothing publishes until some other traffic does
    // (a budget-crossing kFresh read, or an explicit refresh), so a pure
    // kSnapshot client must warm the snapshot once — say so instead of
    // inviting a blind retry.
    return Status::Unavailable(
        "kSnapshot read with no published snapshot; warm one with "
        "WaitForSnapshot({Generation()}) first (under kSync, kFresh "
        "traffic also publishes eventually)");
  }
  if (pin->generation < options.min_generation) {
    return Status::Unavailable(
        "published snapshot at generation " +
        std::to_string(pin->generation) + " trails min_generation " +
        std::to_string(options.min_generation) +
        "; retry, WaitForSnapshot, or relax to kFresh");
  }
  if (max_vertex >= (*pin)->NumVertices()) {
    return Status::Unavailable(
        "published snapshot predates vertex " + std::to_string(max_vertex) +
        "; retry after the next refresh or relax to kFresh");
  }
  engine_.YieldForMaintenance(gen, pin->generation);
  return Status::OK();
}

Status SpcService::RouteRead(const ReadOptions& options, size_t queries,
                             Vertex max_vertex, uint64_t* generation,
                             SnapshotManager::Pinned* pin) const {
  const uint64_t gen = engine_.Generation();
  *generation = gen;
  if (options.min_generation > gen) [[unlikely]] {
    metrics_.RecordRejected(Status::Code::kInvalidArgument);
    return FutureMinGeneration(options.min_generation, gen);
  }

  if (options.consistency == Consistency::kSnapshot) {
    Status st = RouteSnapshotRead(options, queries, max_vertex, gen, pin);
    if (!st.ok()) [[unlikely]] {
      metrics_.RecordRejected(st.code());
    }
    return st;
  }

  // kFresh / kBoundedStaleness: acquire (budget-charging, so rebuilds
  // keep getting scheduled), serve the pin when it satisfies the mode's
  // bound, ride the live index otherwise — which is current by
  // definition and therefore satisfies any valid min_generation and any
  // lag bound.
  SnapshotManager::Pinned acquired;
  if (options.timeout >= std::chrono::nanoseconds::zero() &&
      engine_.options().snapshot.enabled &&
      engine_.snapshots()->policy() == RefreshPolicy::kSync) [[unlikely]] {
    // Under kSync a budget-crossing Acquire rebuilds inline — an
    // unbounded wait on the writer lock inside the snapshot source. A
    // deadline-bounded read must never perform maintenance: take the
    // free pin (serving it only if it satisfies the mode below) and
    // leave the inline rebuild to the next untimed read — but still
    // charge the staleness budget, so an all-timed workload keeps the
    // rebuild due instead of pinning staleness forever.
    acquired = engine_.PinSnapshot();
    if (!acquired || acquired.generation < gen) {
      engine_.ChargeSnapshotBudget(queries);
    }
  } else {
    acquired = engine_.AcquireSnapshot(gen, queries);
  }
  if (acquired && max_vertex < acquired->NumVertices()) {
    if (acquired.generation >= gen ||
        (options.consistency == Consistency::kBoundedStaleness &&
         gen - acquired.generation <= options.max_lag &&
         acquired.generation >= options.min_generation)) {
      // Same pacing as the engine's own query path: every snapshot-served
      // read donates a timeslice while a writer is mid-update (or the
      // snapshot trails too far), current pin or not.
      engine_.YieldForMaintenance(gen, acquired.generation);
      *pin = std::move(acquired);
    }
  }
  return Status::OK();
}

StatusOr<QueryResponse> SpcService::Query(Vertex s, Vertex t,
                                          const ReadOptions& options) const {
  // One admission check for both endpoints: this sits on the hot path,
  // so read the id-space bound once.
  const size_t n = engine_.NumVertices();
  if (static_cast<size_t>(s) >= n || static_cast<size_t>(t) >= n)
      [[unlikely]] {
    metrics_.RecordRejected(Status::Code::kInvalidArgument);
    return BadVertex(static_cast<size_t>(s) >= n ? "source" : "target",
                     static_cast<size_t>(s) >= n ? s : t, n);
  }

  const LatencyTimer timer(SampleReadLatency());
  uint64_t generation = 0;
  SnapshotManager::Pinned pin;
  if (Status st = RouteRead(options, 1, std::max(s, t), &generation, &pin);
      !st.ok()) [[unlikely]] {
    return st;
  }

  // Responses are built fully formed in the return slot (no default
  // construction + field-by-field overwrite): this path runs per query.
  if (pin) {
    const uint64_t staleness =
        generation > pin.generation ? generation - pin.generation : 0;
    metrics_.RecordRead(options.consistency, ServedFrom::kSnapshot,
                        staleness, 1, false);
    // Hot-pair cache (DESIGN.md §15): keyed by the generation of the
    // snapshot that is ABOUT to serve this read, so a hit is by
    // construction the exact answer that snapshot would compute —
    // min_generation / token semantics were already enforced by
    // RouteRead when it picked the pin. A miss computes and caches.
    if (pair_cache_ != nullptr) {
      SpcResult cached;
      if (!pair_cache_->Lookup(s, t, pin.generation, &cached)) {
        cached = pin->Query(s, t);
        pair_cache_->Insert(s, t, pin.generation, cached);
      }
      StatusOr<QueryResponse> out(std::in_place, cached, pin.generation,
                                  staleness, ServedFrom::kSnapshot);
      timer.Finish(&metrics_, options.consistency);
      return out;
    }
    StatusOr<QueryResponse> out(std::in_place, pin->Query(s, t),
                                pin.generation, staleness,
                                ServedFrom::kSnapshot);
    timer.Finish(&metrics_, options.consistency);
    return out;
  }
  // Live serving — the one read path that can wait on a writer, so the
  // one place the per-call deadline binds. The response generation is
  // re-read under the lock: a write that finished while we waited is in
  // the answer, so the admission-time value would understate it.
  if (options.timeout >= std::chrono::nanoseconds::zero()) [[unlikely]] {
    SpcResult result;
    if (!engine_.QueryLiveBefore(s, t, DeadlineFor(options.timeout),
                                 &result, &generation)) {
      metrics_.RecordReadDeadlineMiss();
      return LiveReadDeadlineExceeded();
    }
    metrics_.RecordRead(options.consistency, ServedFrom::kLiveIndex, 0, 1,
                        false);
    timer.Finish(&metrics_, options.consistency);
    return StatusOr<QueryResponse>(std::in_place, result, generation,
                                   uint64_t{0}, ServedFrom::kLiveIndex);
  }
  const SpcResult live = engine_.QueryLive(s, t, &generation);
  metrics_.RecordRead(options.consistency, ServedFrom::kLiveIndex, 0, 1,
                      false);
  timer.Finish(&metrics_, options.consistency);
  return StatusOr<QueryResponse>(std::in_place, live, generation,
                                 uint64_t{0}, ServedFrom::kLiveIndex);
}

StatusOr<BatchQueryResponse> SpcService::QueryBatch(
    std::span<const VertexPair> pairs, const ReadOptions& options) const {
  const size_t n = engine_.NumVertices();
  Vertex max_vertex = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto [s, t] = pairs[i];
    if (static_cast<size_t>(s) >= n || static_cast<size_t>(t) >= n) {
      metrics_.RecordRejected(Status::Code::kInvalidArgument);
      const Status bad =
          BadVertex(static_cast<size_t>(s) >= n ? "source" : "target",
                    static_cast<size_t>(s) >= n ? s : t, n);
      return Status::InvalidArgument("pair " + std::to_string(i) + ": " +
                                     bad.message());
    }
    max_vertex = std::max({max_vertex, s, t});
  }

  // Batches always time: the call amortizes the two clock reads.
  const LatencyTimer timer(true);
  uint64_t generation = 0;
  SnapshotManager::Pinned pin;
  if (Status st =
          RouteRead(options, pairs.size(), max_vertex, &generation, &pin);
      !st.ok()) {
    return st;
  }

  const bool timed = options.timeout >= std::chrono::nanoseconds::zero();
  StatusOr<BatchQueryResponse> out(std::in_place);
  if (pin) {
    // Batches bypass the pair cache deliberately: the parallel fan-out
    // below would serialize on the cache's shard locks, and batch
    // traffic has none of the single-read repetition the cache exists
    // for.
    //
    // Snapshot-served batches hold no lock, so queueing on the shared
    // pool's serialized regions can only delay them, never stall a
    // writer or void the deadline contract (which bounds the
    // writer-lock wait only) — timed and untimed batches alike use the
    // shared pool: no per-batch thread spawns on the serving path.
    out->results = pin->QueryManyParallel(
        pairs, options.threads,
        engine_.PoolForBatch(pairs.size(), options.threads));
    out->generation = pin.generation;
    out->staleness =
        generation > pin.generation ? generation - pin.generation : 0;
    out->served_from = ServedFrom::kSnapshot;
  } else {
    if (timed) [[unlikely]] {
      if (!engine_.BatchQueryLiveBefore(pairs, options.threads,
                                        DeadlineFor(options.timeout),
                                        &out->results, &generation)) {
        metrics_.RecordReadDeadlineMiss();
        return LiveReadDeadlineExceeded();
      }
    } else {
      out->results =
          engine_.BatchQueryLive(pairs, options.threads, &generation);
    }
    out->generation = generation;
    out->served_from = ServedFrom::kLiveIndex;
  }
  metrics_.RecordRead(options.consistency, out->served_from, out->staleness,
                      pairs.size(), true);
  timer.Finish(&metrics_, options.consistency);
  return out;
}

StatusOr<UpdateResponse> SpcService::ApplyUpdates(
    std::span<const Update> updates, const WriteOptions& write) {
  if (fs_ == nullptr) return ApplyUpdatesPlain(updates);
  return ApplyUpdatesDurable(updates, write);
}

StatusOr<UpdateResponse> SpcService::ApplyUpdatesPlain(
    std::span<const Update> updates) {
  // Admission is per update: out-of-range endpoints are rejected
  // individually (kRejected report) while the valid remainder applies.
  const size_t n = engine_.NumVertices();
  size_t invalid = 0;
  for (const Update& u : updates) {
    if (static_cast<size_t>(u.edge.u) >= n ||
        static_cast<size_t>(u.edge.v) >= n) {
      ++invalid;
    }
  }

  StatusOr<UpdateResponse> out(std::in_place);
  UpdateResponse& resp = *out;
  if (invalid == 0) {
    resp.stats = engine_.ApplyBatch(updates, &resp.reports);
  } else {
    // Scatter/gather: apply the admitted subset, then place its reports
    // back at the original input positions.
    resp.reports.resize(updates.size());
    std::vector<Update> admitted;
    std::vector<size_t> position;
    admitted.reserve(updates.size() - invalid);
    position.reserve(updates.size() - invalid);
    for (size_t i = 0; i < updates.size(); ++i) {
      const Edge& e = updates[i].edge;
      if (static_cast<size_t>(e.u) >= n || static_cast<size_t>(e.v) >= n) {
        resp.reports[i].outcome = WriteReport::Outcome::kRejected;
        resp.reports[i].reason =
            "endpoint vertex id outside [0, NumVertices())";
        continue;
      }
      admitted.push_back(updates[i]);
      position.push_back(i);
    }
    std::vector<WriteReport> sub;
    resp.stats = engine_.ApplyBatch(admitted, &sub);
    for (size_t j = 0; j < sub.size(); ++j) {
      resp.reports[position[j]] = sub[j];
    }
  }

  for (const WriteReport& report : resp.reports) {
    switch (report.outcome) {
      case WriteReport::Outcome::kApplied:
        ++resp.applied;
        break;
      case WriteReport::Outcome::kNoOp:
        ++resp.noops;
        break;
      case WriteReport::Outcome::kRejected:
        ++resp.rejected;
        break;
    }
  }
  resp.token.generation = engine_.Generation();
  metrics_.RecordWrite(updates.size(), resp.applied, resp.noops,
                       resp.rejected);
  return out;
}

StatusOr<UpdateResponse> SpcService::ApplyUpdatesDurable(
    std::span<const Update> updates, const WriteOptions& write) {
  // Hard batch admission cap: an intent record larger than
  // kWalMaxRecordBytes would be refused by the WAL (and, were it ever
  // written, read back as a torn tail — losing an acknowledged write at
  // recovery). Refused up front, before any per-update work.
  if (updates.size() > kWalMaxBatchUpdates) {
    metrics_.RecordRejected(Status::Code::kInvalidArgument);
    return Status::InvalidArgument(
        "durable batch of " + std::to_string(updates.size()) +
        " updates exceeds the per-call cap of " +
        std::to_string(kWalMaxBatchUpdates) +
        " (its WAL intent record would not fit one frame); split the "
        "batch");
  }
  StatusOr<UpdateResponse> out(std::in_place);
  UpdateResponse& resp = *out;
  uint64_t commit_offset = 0;
  std::shared_ptr<WalWriter> wal;
  {
    // dur_mu_ serializes the whole durable write path: WAL order and
    // engine apply order are the same order by construction, which is
    // what makes replay deterministic. It is taken BEFORE the engine's
    // writer lock (inside ApplyBatch), never the other way around.
    std::lock_guard<std::mutex> lock(dur_mu_);
    if (dur_failed_) {
      metrics_.RecordRejected(dur_error_.code());
      return dur_error_;
    }
    const size_t n = engine_.NumVertices();
    resp.reports.resize(updates.size());
    std::vector<Update> admitted;
    std::vector<size_t> position;
    admitted.reserve(updates.size());
    position.reserve(updates.size());
    for (size_t i = 0; i < updates.size(); ++i) {
      const Edge& e = updates[i].edge;
      if (static_cast<size_t>(e.u) >= n || static_cast<size_t>(e.v) >= n) {
        resp.reports[i].outcome = WriteReport::Outcome::kRejected;
        resp.reports[i].reason =
            "endpoint vertex id outside [0, NumVertices())";
        continue;
      }
      admitted.push_back(updates[i]);
      position.push_back(i);
    }
    resp.token.generation = engine_.Generation();
    if (!admitted.empty()) {
      // Intent before apply, commit (with per-update outcomes) after:
      // recovery replays only paired records, so a crash anywhere in
      // between loses exactly the unacknowledged tail and nothing else.
      WalRecord intent;
      intent.kind = WalRecord::Kind::kBatch;
      intent.seq = NextBatchSeqLocked();
      intent.generation = engine_.Generation();
      intent.updates = admitted;
      if (auto off = AppendWalLocked(EncodeWalRecord(intent)); !off.ok()) {
        return off.status();
      }
      std::vector<WriteReport> sub;
      resp.stats = engine_.ApplyBatch(admitted, &sub);
      WalRecord commit;
      commit.kind = WalRecord::Kind::kCommit;
      commit.seq = intent.seq;
      commit.generation = engine_.Generation();
      commit.outcomes.resize(sub.size());
      for (size_t j = 0; j < sub.size(); ++j) {
        commit.outcomes[j] = sub[j].applied() ? 1 : 0;
      }
      auto off = AppendWalLocked(EncodeWalRecord(commit));
      for (size_t j = 0; j < sub.size(); ++j) {
        resp.reports[position[j]] = sub[j];
      }
      resp.token.generation = commit.generation;
      // The engine applied either way, but a write whose commit record
      // never reached the log must not be acknowledged: recovery would
      // drop it. Fail the call (and the service — AppendWalLocked has
      // already latched fail-stop).
      if (!off.ok()) return off.status();
      commit_offset = *off;
      wal = wal_;
    }
    MaybeTriggerCheckpointLocked();
  }

  for (const WriteReport& report : resp.reports) {
    switch (report.outcome) {
      case WriteReport::Outcome::kApplied:
        ++resp.applied;
        break;
      case WriteReport::Outcome::kNoOp:
        ++resp.noops;
        break;
      case WriteReport::Outcome::kRejected:
        ++resp.rejected;
        break;
    }
  }
  metrics_.RecordWrite(updates.size(), resp.applied, resp.noops,
                       resp.rejected);
  if (write.durable) {
    if (wal) {
      metrics_.RecordWalDurableWait();
      if (Status st = WaitDurableOffset(wal, commit_offset); !st.ok()) {
        return st;
      }
    }
    // Nothing admitted ⇒ nothing to persist; trivially durable.
    resp.token.durable = true;
  }
  return out;
}

StatusOr<UpdateResponse> SpcService::InsertEdge(Vertex u, Vertex v,
                                                const WriteOptions& write) {
  // Single-edge calls keep the strict contract: a bad endpoint fails the
  // call (there is no partial batch a caller could still want).
  if (Status st = ValidateVertex(u, "edge"); !st.ok()) return st;
  if (Status st = ValidateVertex(v, "edge"); !st.ok()) return st;
  const Update update = Update::Insert(u, v);
  return ApplyUpdates({&update, 1}, write);
}

StatusOr<UpdateResponse> SpcService::RemoveEdge(Vertex u, Vertex v,
                                                const WriteOptions& write) {
  if (Status st = ValidateVertex(u, "edge"); !st.ok()) return st;
  if (Status st = ValidateVertex(v, "edge"); !st.ok()) return st;
  const Update update = Update::Delete(u, v);
  return ApplyUpdates({&update, 1}, write);
}

AddVertexResponse SpcService::AddVertex(const WriteOptions& write) {
  AddVertexResponse resp;
  if (fs_ == nullptr) {
    resp.vertex = engine_.AddVertex();
    resp.token.generation = engine_.Generation();
    metrics_.RecordWrite(1, 1, 0, 0);
    return resp;
  }
  uint64_t offset = 0;
  std::shared_ptr<WalWriter> wal;
  {
    std::lock_guard<std::mutex> lock(dur_mu_);
    if (dur_failed_) {
      metrics_.RecordRejected(dur_error_.code());
      return resp;  // vertex stays kInvalidVertex: the refusal signal
    }
    // AddVertex self-commits: under dur_mu_ serialization both record
    // fields are exact predictions (the new id is the current count,
    // the generation bumps by exactly one), so logging before the apply
    // still lets replay cross-check them.
    WalRecord rec;
    rec.kind = WalRecord::Kind::kAddVertex;
    rec.generation = engine_.Generation() + 1;
    rec.vertex = static_cast<Vertex>(engine_.NumVertices());
    auto off = AppendWalLocked(EncodeWalRecord(rec));
    if (!off.ok()) return resp;
    resp.vertex = engine_.AddVertex();
    resp.token.generation = engine_.Generation();
    offset = *off;
    wal = wal_;
    MaybeTriggerCheckpointLocked();
  }
  metrics_.RecordWrite(1, 1, 0, 0);
  if (write.durable) {
    metrics_.RecordWalDurableWait();
    if (WaitDurableOffset(wal, offset).ok()) resp.token.durable = true;
  }
  return resp;
}

StatusOr<UpdateResponse> SpcService::RemoveVertex(Vertex v,
                                                 const WriteOptions& write) {
  if (Status st = ValidateVertex(v, "vertex"); !st.ok()) return st;
  StatusOr<UpdateResponse> out(std::in_place);
  UpdateResponse& resp = *out;
  uint64_t offset = 0;
  std::shared_ptr<WalWriter> wal;
  if (fs_ == nullptr) {
    resp.stats = engine_.RemoveVertex(v);
    resp.token.generation = engine_.Generation();
  } else {
    std::lock_guard<std::mutex> lock(dur_mu_);
    if (dur_failed_) {
      metrics_.RecordRejected(dur_error_.code());
      return dur_error_;
    }
    WalRecord intent;
    intent.kind = WalRecord::Kind::kRemoveVertex;
    intent.seq = NextBatchSeqLocked();
    intent.vertex = v;
    if (auto off = AppendWalLocked(EncodeWalRecord(intent)); !off.ok()) {
      return off.status();
    }
    resp.stats = engine_.RemoveVertex(v);
    WalRecord commit;
    commit.kind = WalRecord::Kind::kCommit;
    commit.seq = intent.seq;
    commit.generation = engine_.Generation();
    auto off = AppendWalLocked(EncodeWalRecord(commit));
    resp.token.generation = commit.generation;
    if (!off.ok()) return off.status();
    offset = *off;
    wal = wal_;
    MaybeTriggerCheckpointLocked();
  }
  // Vertex deletion folds one decremental update per incident edge; the
  // report covers the whole deletion as one logical update.
  resp.reports.resize(1);
  WriteReport& report = resp.reports[0];
  if (resp.stats.applied) {
    report.outcome = WriteReport::Outcome::kApplied;
    report.reason = "applied";
    report.stats = resp.stats;
    report.generation = resp.token.generation;
    resp.applied = 1;
  } else {
    report.outcome = WriteReport::Outcome::kNoOp;
    report.reason = "vertex already isolated";
    resp.noops = 1;
  }
  metrics_.RecordWrite(1, resp.applied, resp.noops, 0);
  if (write.durable) {
    if (wal) {
      metrics_.RecordWalDurableWait();
      if (Status st = WaitDurableOffset(wal, offset); !st.ok()) return st;
    }
    resp.token.durable = true;
  }
  return out;
}

StatusOr<uint64_t> SpcService::AppendWalLocked(
    const std::vector<uint8_t>& payload) {
  auto off = wal_->AppendRecord(payload);
  if (!off.ok()) return FailDurabilityLocked(off.status());
  metrics_.RecordWalAppend(payload.size() + kWalRecordOverheadBytes);
  return off;
}

Status SpcService::FailDurabilityLocked(Status st) {
  if (!dur_failed_) {
    dur_failed_ = true;
    dur_error_ = std::move(st);
    metrics_.RecordWalFailure();
  }
  return dur_error_;  // the FIRST failure is the story, always
}

Status SpcService::WaitDurableOffset(const std::shared_ptr<WalWriter>& wal,
                                     uint64_t offset) {
  // Called WITHOUT dur_mu_: group commit blocks here and concurrent
  // writers must keep appending (that is the whole point of batching).
  // The shared_ptr keeps the segment alive across a concurrent rotation;
  // rotation Closes the old segment, and Close's final sync satisfies
  // this wait.
  Status st = wal->WaitDurable(offset);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(dur_mu_);
    return FailDurabilityLocked(std::move(st));
  }
  return st;
}

Status SpcService::PublishSnapshot(SnapshotPublisher* publisher) {
  if (publisher == nullptr) {
    return Status::InvalidArgument("PublishSnapshot: null publisher");
  }
  // Same capture discipline as CheckpointLocked, minus the WAL rotation:
  // FreezeWrites blocks engine writers only, so reads keep serving while
  // the (generation, index) pair is copied; the arena write then happens
  // outside every lock.
  uint64_t gen = 0;
  std::unique_ptr<FlatSpcIndex> flat;
  {
    auto freeze = engine_.FreezeWrites();
    gen = engine_.Generation();
    flat = std::make_unique<FlatSpcIndex>(engine_.index());
  }
  const uint64_t wal_seq = Durable() ? WalSyncedTip().first : 0;
  Status st = publisher->Publish(*flat, gen, wal_seq);
  if (st.ok()) metrics_.RecordSnapshotPublish();
  return st;
}

Status SpcService::Checkpoint() {
  if (fs_ == nullptr) {
    return Status::NotSupported(
        "not a durable service (construct with SpcService::Open)");
  }
  std::lock_guard<std::mutex> lock(dur_mu_);
  if (dur_failed_) return dur_error_;
  return CheckpointLocked();
}

Status SpcService::CheckpointLocked() {
  // Capture a consistent (generation, graph, index) triple. FreezeWrites
  // only blocks engine writers — readers keep serving throughout; and
  // since dur_mu_ is held, no durable writer can be mid-append anyway.
  uint64_t gen = 0;
  Graph graph_copy;
  std::unique_ptr<FlatSpcIndex> flat;
  {
    auto freeze = engine_.FreezeWrites();
    gen = engine_.Generation();
    graph_copy = engine_.graph();
    flat = std::make_unique<FlatSpcIndex>(engine_.index());
  }
  // Rotate first: the new segment must exist (and carry base_generation
  // == gen) before the manifest can point at it. A crash between the
  // two leaves the old manifest in charge — the old segment run is still
  // contiguous, the new segment is just an empty stray.
  const uint64_t new_seq = wal_->seq() + 1;
  WalWriter::Options wal_options;
  wal_options.sync = dur_options_.sync;
  wal_options.flush_interval = dur_options_.flush_interval;
  wal_options.on_sync = [this] { metrics_.RecordWalSync(); };
  auto next = WalWriter::Create(
      fs_, dur_options_.dir + "/" + WalSegmentFileName(new_seq), new_seq,
      gen, wal_options);
  if (!next.ok()) return FailDurabilityLocked(next.status());
  std::shared_ptr<WalWriter> old = wal_;
  wal_ = std::move(*next);
  batch_seq_in_segment_ = 0;  // pairing keys are scoped per segment
  // Close syncs everything appended before tearing down, so records the
  // checkpoint is about to cover — and any in-flight durable waiters on
  // the old segment — are safe before the manifest moves past them.
  if (Status st = old->Close(); !st.ok()) return FailDurabilityLocked(st);
  if (Status st = checkpointer_->Publish(graph_copy, *flat, gen, new_seq);
      !st.ok()) {
    return FailDurabilityLocked(st);
  }
  metrics_.RecordCheckpoint();
  return Status::OK();
}

void SpcService::MaybeTriggerCheckpointLocked() {
  if (!checkpoint_thread_.joinable() || dur_failed_ ||
      checkpoint_requested_) {
    return;
  }
  const uint64_t bytes = dur_options_.checkpoint_wal_bytes;
  const uint64_t records = dur_options_.checkpoint_wal_records;
  const bool due =
      (bytes != 0 && wal_->AppendedBytes() >= bytes) ||
      (records != 0 && wal_->AppendedRecords() >= records);
  if (due) {
    checkpoint_requested_ = true;
    checkpoint_cv_.notify_one();
  }
}

void SpcService::CheckpointLoop() {
  std::unique_lock<std::mutex> lock(dur_mu_);
  while (!stop_checkpointer_) {
    checkpoint_cv_.wait(lock, [&] {
      return stop_checkpointer_ || checkpoint_requested_;
    });
    checkpoint_requested_ = false;
    if (stop_checkpointer_ || dur_failed_) continue;
    // Failure latches fail-stop (visible to every writer); nothing to
    // return to from a background trigger.
    (void)CheckpointLocked();
  }
}

Status SpcService::WaitForSnapshotUntil(
    WriteToken token, bool timed,
    std::chrono::steady_clock::time_point deadline) const {
  if (!engine_.options().snapshot.enabled) {
    metrics_.RecordRejected(Status::Code::kNotSupported);
    return Status::NotSupported(
        "snapshots are disabled on this service (SnapshotOptions::enabled)");
  }
  if (token.generation > engine_.Generation()) {
    metrics_.RecordRejected(Status::Code::kInvalidArgument);
    return Status::InvalidArgument(
        "token generation " + std::to_string(token.generation) +
        " exceeds the current generation — not issued by this service");
  }
  const auto pin = timed
                       ? engine_.AwaitSnapshotAtLeast(token.generation,
                                                      deadline)
                       : engine_.AwaitSnapshotAtLeast(token.generation);
  if (!pin || pin.generation < token.generation) {
    if (timed) {
      metrics_.RecordWaitDeadlineMiss();
      return Status::DeadlineExceeded(
          "published snapshot did not reach generation " +
          std::to_string(token.generation) + " before the deadline");
    }
    return Status::Unavailable(
        "snapshot manager stopped before reaching generation " +
        std::to_string(token.generation));
  }
  return Status::OK();
}

Status SpcService::WaitForSnapshot(WriteToken token) const {
  return WaitForSnapshotUntil(token, /*timed=*/false, {});
}

Status SpcService::WaitForSnapshot(WriteToken token,
                                   std::chrono::nanoseconds timeout) const {
  if (timeout < std::chrono::nanoseconds::zero()) {
    return WaitForSnapshotUntil(token, /*timed=*/false, {});
  }
  return WaitForSnapshotUntil(token, /*timed=*/true, DeadlineFor(timeout));
}

MetricsSnapshot SpcService::Metrics() const {
  MetricsSnapshot snap = metrics_.Snapshot();
  // Pair-cache counters live in the cache itself (its shard locks
  // already serialize them); fold them into the snapshot here, the same
  // overlay pattern the replica gauges use.
  if (pair_cache_ != nullptr) {
    const PairCache::Stats stats = pair_cache_->StatsSnapshot();
    snap.pair_cache_hits = stats.hits;
    snap.pair_cache_misses = stats.misses;
    snap.pair_cache_insertions = stats.insertions;
    snap.pair_cache_evictions = stats.evictions;
  }
  return snap;
}

}  // namespace dspc
