#include "dspc/api/service_metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "dspc/api/spc_service.h"

namespace dspc {

namespace {

const char* kStalenessLabels[MetricsSnapshot::kStalenessBuckets] = {
    "0", "1", "2", "3-4", "5-8", "9-16", "17-64", ">64"};
const char* kBatchLabels[MetricsSnapshot::kBatchBuckets] = {
    "1", "2-4", "5-16", "17-64", "65-256", "257-1K", "1K-4K", ">4K"};

void AppendHist(std::string* out, const char* const* labels,
                const uint64_t* buckets, size_t n) {
  char buf[64];
  for (size_t i = 0; i < n; ++i) {
    if (buckets[i] == 0) continue;  // dense dumps drown the signal
    std::snprintf(buf, sizeof(buf), " %s:%" PRIu64, labels[i], buckets[i]);
    *out += buf;
  }
}

}  // namespace

uint64_t MetricsSnapshot::StalenessSamples() const {
  uint64_t total = 0;
  for (const uint64_t b : staleness_hist) total += b;
  return total;
}

uint64_t MetricsSnapshot::LatencySamples(size_t mode) const {
  uint64_t total = 0;
  for (const uint64_t b : read_latency_hist[mode]) total += b;
  return total;
}

uint64_t MetricsSnapshot::ReadLatencyQuantileNs(size_t mode, double q) const {
  const uint64_t total = LatencySamples(mode);
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the wanted sample (1-based, ceil), then walk the buckets.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (size_t b = 0; b < kLatencyBuckets; ++b) {
    const uint64_t n = read_latency_hist[mode][b];
    if (seen + n < rank) {
      seen += n;
      continue;
    }
    // Linear interpolation inside the winning bucket.
    const uint64_t upper = LatencyBucketUpperNs(b);
    const uint64_t lower = b == 0 ? 0 : LatencyBucketUpperNs(b - 1);
    const double frac =
        n == 0 ? 1.0
               : static_cast<double>(rank - seen) / static_cast<double>(n);
    return lower +
           static_cast<uint64_t>(frac * static_cast<double>(upper - lower));
  }
  return LatencyBucketUpperNs(kLatencyBuckets - 1);
}

std::string MetricsSnapshot::ToString() const {
  const uint64_t total = TotalQueries();
  const uint64_t served = served_from_snapshot + served_from_live;
  char buf[256];
  std::string out = "SpcService metrics\n";

  std::snprintf(buf, sizeof(buf),
                "  queries: total=%" PRIu64 " fresh=%" PRIu64
                " snapshot=%" PRIu64 " bounded=%" PRIu64 "\n",
                total, queries_by_mode[0], queries_by_mode[1],
                queries_by_mode[2]);
  out += buf;

  std::snprintf(
      buf, sizeof(buf),
      "  served_from: snapshot=%" PRIu64 " (%.1f%%) live=%" PRIu64
      " (%.1f%%)\n",
      served_from_snapshot,
      served > 0 ? 100.0 * static_cast<double>(served_from_snapshot) /
                       static_cast<double>(served)
                 : 0.0,
      served_from_live,
      served > 0 ? 100.0 * static_cast<double>(served_from_live) /
                       static_cast<double>(served)
                 : 0.0);
  out += buf;

  out += "  staleness (generations behind, per served query):";
  AppendHist(&out, kStalenessLabels, staleness_hist.data(),
             kStalenessBuckets);
  if (StalenessSamples() == 0) out += " (none)";
  out += "\n";

  static const char* kModeNames[kModes] = {"fresh", "snapshot", "bounded"};
  for (size_t m = 0; m < kModes; ++m) {
    const uint64_t n = LatencySamples(m);
    if (n == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "  read_latency[%s]: samples=%" PRIu64 " mean=%.1fus"
                  " p50=%.1fus p99=%.1fus\n",
                  kModeNames[m], n,
                  static_cast<double>(read_latency_sum_ns[m]) /
                      static_cast<double>(n) / 1e3,
                  static_cast<double>(ReadLatencyQuantileNs(m, 0.5)) / 1e3,
                  static_cast<double>(ReadLatencyQuantileNs(m, 0.99)) / 1e3);
    out += buf;
  }

  std::snprintf(buf, sizeof(buf),
                "  deadline_misses: reads=%" PRIu64
                " wait_for_snapshot=%" PRIu64 "\n",
                deadline_misses_read, deadline_misses_wait);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  rejected: invalid_argument=%" PRIu64
                " unavailable=%" PRIu64 " not_supported=%" PRIu64 "\n",
                rejected_invalid_argument, rejected_unavailable,
                rejected_not_supported);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  read_batches: calls=%" PRIu64 " queries=%" PRIu64
                " sizes:",
                read_batches, read_batch_queries);
  out += buf;
  AppendHist(&out, kBatchLabels, read_batch_size_hist.data(), kBatchBuckets);
  out += "\n";

  std::snprintf(buf, sizeof(buf),
                "  writes: batches=%" PRIu64 " applied=%" PRIu64
                " noop=%" PRIu64 " rejected=%" PRIu64 " sizes:",
                write_batches, updates_applied, updates_noop,
                updates_rejected);
  out += buf;
  AppendHist(&out, kBatchLabels, write_batch_size_hist.data(),
             kBatchBuckets);
  out += "\n";

  std::snprintf(buf, sizeof(buf),
                "  durability: wal_appends=%" PRIu64 " wal_bytes=%" PRIu64
                " wal_syncs=%" PRIu64 " durable_waits=%" PRIu64
                " failures=%" PRIu64 " checkpoints=%" PRIu64
                " snapshot_publishes=%" PRIu64 "\n",
                wal_appends, wal_appended_bytes, wal_syncs,
                wal_durable_waits, wal_failures, checkpoints,
                snapshot_publishes);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  recovery: replayed=%" PRIu64
                " truncated_tail_bytes=%" PRIu64 "\n",
                recovery_replayed, recovery_truncated_bytes);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  replication: ckpts_shipped=%" PRIu64
                " segments_shipped=%" PRIu64 " bytes_shipped=%" PRIu64
                " ops_applied=%" PRIu64 "\n",
                repl_checkpoints_shipped, repl_segments_shipped,
                repl_bytes_shipped, repl_ops_applied);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  replication_health: reconnects=%" PRIu64
                " backoff_sleeps=%" PRIu64 " rebootstraps=%" PRIu64
                " failovers=%" PRIu64 " applied_gen=%" PRIu64 " lag=%" PRIu64
                "\n",
                repl_reconnects, repl_backoff_sleeps, repl_rebootstraps,
                repl_failovers, replica_applied_generation, replica_lag);
  out += buf;

  const uint64_t pair_cache_lookups = pair_cache_hits + pair_cache_misses;
  std::snprintf(buf, sizeof(buf),
                "  pair_cache: hits=%" PRIu64 " misses=%" PRIu64
                " (hit %.1f%%) insertions=%" PRIu64 " evictions=%" PRIu64
                "\n",
                pair_cache_hits, pair_cache_misses,
                pair_cache_lookups != 0
                    ? 100.0 * static_cast<double>(pair_cache_hits) /
                          static_cast<double>(pair_cache_lookups)
                    : 0.0,
                pair_cache_insertions, pair_cache_evictions);
  out += buf;
  return out;
}

namespace {

void PromCounter(std::string* out, const char* name, const char* help,
                 uint64_t value, const char* labels = nullptr) {
  char buf[256];
  if (help != nullptr) {
    std::snprintf(buf, sizeof(buf), "# HELP %s %s\n# TYPE %s counter\n",
                  name, help, name);
    *out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%s%s %" PRIu64 "\n", name,
                labels != nullptr ? labels : "", value);
  *out += buf;
}

void PromGauge(std::string* out, const char* name, const char* help,
               uint64_t value) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "# HELP %s %s\n# TYPE %s gauge\n%s %" PRIu64 "\n", name,
                help, name, name, value);
  *out += buf;
}

}  // namespace

std::string MetricsSnapshot::PrometheusText() const {
  static const char* kModeNames[kModes] = {"fresh", "snapshot", "bounded"};
  std::string out;
  char buf[256];

  out +=
      "# HELP dspc_queries_total Served queries by consistency mode.\n"
      "# TYPE dspc_queries_total counter\n";
  for (size_t m = 0; m < kModes; ++m) {
    std::snprintf(buf, sizeof(buf),
                  "dspc_queries_total{mode=\"%s\"} %" PRIu64 "\n",
                  kModeNames[m], queries_by_mode[m]);
    out += buf;
  }

  out +=
      "# HELP dspc_served_from_total Served queries by serving source.\n"
      "# TYPE dspc_served_from_total counter\n";
  std::snprintf(buf, sizeof(buf),
                "dspc_served_from_total{source=\"snapshot\"} %" PRIu64
                "\ndspc_served_from_total{source=\"live\"} %" PRIu64 "\n",
                served_from_snapshot, served_from_live);
  out += buf;

  // Staleness as a native Prometheus histogram: cumulative buckets keyed
  // by each bucket's inclusive upper bound in generations.
  out +=
      "# HELP dspc_read_staleness_generations Serving-source staleness per"
      " served query, in generations.\n"
      "# TYPE dspc_read_staleness_generations histogram\n";
  {
    static const char* kUpper[kStalenessBuckets] = {"0",  "1",  "2",  "4",
                                                    "8",  "16", "64", "+Inf"};
    uint64_t cum = 0;
    for (size_t b = 0; b < kStalenessBuckets; ++b) {
      cum += staleness_hist[b];
      std::snprintf(
          buf, sizeof(buf),
          "dspc_read_staleness_generations_bucket{le=\"%s\"} %" PRIu64 "\n",
          kUpper[b], cum);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "dspc_read_staleness_generations_count %" PRIu64 "\n",
                  cum);
    out += buf;
  }

  out +=
      "# HELP dspc_read_latency_seconds Sampled read-call latency by"
      " consistency mode.\n"
      "# TYPE dspc_read_latency_seconds histogram\n";
  for (size_t m = 0; m < kModes; ++m) {
    uint64_t cum = 0;
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      cum += read_latency_hist[m][b];
      if (b + 1 == kLatencyBuckets) {
        std::snprintf(buf, sizeof(buf),
                      "dspc_read_latency_seconds_bucket{mode=\"%s\","
                      "le=\"+Inf\"} %" PRIu64 "\n",
                      kModeNames[m], cum);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "dspc_read_latency_seconds_bucket{mode=\"%s\","
                      "le=\"%.9g\"} %" PRIu64 "\n",
                      kModeNames[m],
                      static_cast<double>(LatencyBucketUpperNs(b)) / 1e9,
                      cum);
      }
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "dspc_read_latency_seconds_sum{mode=\"%s\"} %.9g\n"
                  "dspc_read_latency_seconds_count{mode=\"%s\"} %" PRIu64
                  "\n",
                  kModeNames[m],
                  static_cast<double>(read_latency_sum_ns[m]) / 1e9,
                  kModeNames[m], cum);
    out += buf;
  }

  PromCounter(&out, "dspc_read_deadline_misses_total",
              "Reads that returned kDeadlineExceeded.",
              deadline_misses_read);
  PromCounter(&out, "dspc_wait_deadline_misses_total",
              "WaitForSnapshot timeouts.", deadline_misses_wait);
  out +=
      "# HELP dspc_rejected_total Calls refused at admission, by code.\n"
      "# TYPE dspc_rejected_total counter\n";
  std::snprintf(buf, sizeof(buf),
                "dspc_rejected_total{code=\"invalid_argument\"} %" PRIu64
                "\ndspc_rejected_total{code=\"unavailable\"} %" PRIu64
                "\ndspc_rejected_total{code=\"not_supported\"} %" PRIu64
                "\n",
                rejected_invalid_argument, rejected_unavailable,
                rejected_not_supported);
  out += buf;

  PromCounter(&out, "dspc_read_batches_total", "QueryBatch calls served.",
              read_batches);
  PromCounter(&out, "dspc_read_batch_queries_total",
              "Queries across served batches.", read_batch_queries);
  PromCounter(&out, "dspc_write_batches_total", "Admitted write calls.",
              write_batches);
  out +=
      "# HELP dspc_updates_total Per-update write outcomes.\n"
      "# TYPE dspc_updates_total counter\n";
  std::snprintf(buf, sizeof(buf),
                "dspc_updates_total{outcome=\"applied\"} %" PRIu64
                "\ndspc_updates_total{outcome=\"noop\"} %" PRIu64
                "\ndspc_updates_total{outcome=\"rejected\"} %" PRIu64 "\n",
                updates_applied, updates_noop, updates_rejected);
  out += buf;

  PromCounter(&out, "dspc_wal_appends_total", "WAL records appended.",
              wal_appends);
  PromCounter(&out, "dspc_wal_appended_bytes_total",
              "Framed WAL bytes appended.", wal_appended_bytes);
  PromCounter(&out, "dspc_wal_syncs_total", "WAL fsyncs.", wal_syncs);
  PromCounter(&out, "dspc_wal_durable_waits_total",
              "Writes that waited on group commit.", wal_durable_waits);
  PromCounter(&out, "dspc_wal_failures_total",
              "Durability fail-stop trips.", wal_failures);
  PromCounter(&out, "dspc_checkpoints_total", "Checkpoints published.",
              checkpoints);
  PromCounter(&out, "dspc_snapshot_publishes_total",
              "Mmap snapshot arenas published.", snapshot_publishes);
  PromCounter(&out, "dspc_recovery_replayed_total",
              "Committed WAL ops replayed at Open.", recovery_replayed);
  PromCounter(&out, "dspc_recovery_truncated_bytes_total",
              "Torn WAL tail bytes repaired.", recovery_truncated_bytes);

  PromCounter(&out, "dspc_repl_checkpoints_shipped_total",
              "Checkpoint images shipped.", repl_checkpoints_shipped);
  PromCounter(&out, "dspc_repl_segments_shipped_total",
              "WAL segments started shipping.", repl_segments_shipped);
  PromCounter(&out, "dspc_repl_bytes_shipped_total",
              "Segment bytes shipped.", repl_bytes_shipped);
  PromCounter(&out, "dspc_repl_ops_applied_total",
              "Replica replay ops applied.", repl_ops_applied);
  PromCounter(&out, "dspc_repl_reconnects_total",
              "Transport recoveries after faults.", repl_reconnects);
  PromCounter(&out, "dspc_repl_backoff_sleeps_total",
              "Retry backoff sleeps taken.", repl_backoff_sleeps);
  PromCounter(&out, "dspc_repl_rebootstraps_total",
              "Replica restarts from a checkpoint.", repl_rebootstraps);
  PromCounter(&out, "dspc_repl_failovers_total", "Promote() completions.",
              repl_failovers);
  PromGauge(&out, "dspc_replica_applied_generation",
            "Generation the replica serves.", replica_applied_generation);
  PromGauge(&out, "dspc_replica_lag_generations",
            "Primary durable generation minus applied.", replica_lag);

  PromCounter(&out, "dspc_pair_cache_lookups_total",
              "Hot-pair cache lookups by outcome.", pair_cache_hits,
              "{outcome=\"hit\"}");
  PromCounter(&out, "dspc_pair_cache_lookups_total", nullptr,
              pair_cache_misses, "{outcome=\"miss\"}");
  PromCounter(&out, "dspc_pair_cache_insertions_total",
              "Hot-pair cache entries written.", pair_cache_insertions);
  PromCounter(&out, "dspc_pair_cache_evictions_total",
              "Live same-generation entries displaced.",
              pair_cache_evictions);
  return out;
}

void ServiceMetrics::RecordBatchTail(size_t queries) {
  if (queries == 0) return;  // an empty batch served nothing — no sample
  Add(kReadBatches, 1);
  Add(kReadBatchQueries, queries);
  Add(kReadBatchHist + MetricsSnapshot::BatchBucket(queries), 1);
}

void ServiceMetrics::RecordReadDeadlineMiss() { Add(kDeadlineRead, 1); }

void ServiceMetrics::RecordWaitDeadlineMiss() { Add(kDeadlineWait, 1); }

void ServiceMetrics::RecordRejected(Status::Code code) {
  switch (code) {
    case Status::Code::kInvalidArgument:
      Add(kRejInvalidArgument, 1);
      break;
    case Status::Code::kUnavailable:
      Add(kRejUnavailable, 1);
      break;
    case Status::Code::kNotSupported:
      Add(kRejNotSupported, 1);
      break;
    default:
      break;  // not an admission outcome; nothing to count
  }
}

void ServiceMetrics::RecordWrite(size_t batch_size, size_t applied,
                                 size_t noops, size_t rejected) {
  if (batch_size == 0) return;  // nothing admitted — not a write batch
  Shard& shard = Local();
  const auto add = [&shard](size_t counter, uint64_t delta) {
    shard.counters[counter].fetch_add(delta, std::memory_order_relaxed);
  };
  add(kWriteBatches, 1);
  add(kWriteBatchHist + MetricsSnapshot::BatchBucket(batch_size), 1);
  if (applied > 0) add(kUpdatesApplied, applied);
  if (noops > 0) add(kUpdatesNoop, noops);
  if (rejected > 0) add(kUpdatesRejected, rejected);
}

void ServiceMetrics::RecordWalAppend(uint64_t bytes) {
  Shard& shard = Local();
  shard.counters[kWalAppends].fetch_add(1, std::memory_order_relaxed);
  shard.counters[kWalAppendedBytes].fetch_add(bytes,
                                              std::memory_order_relaxed);
}

void ServiceMetrics::RecordWalSync() { Add(kWalSyncs, 1); }

void ServiceMetrics::RecordWalDurableWait() { Add(kWalDurableWaits, 1); }

void ServiceMetrics::RecordWalFailure() { Add(kWalFailures, 1); }

void ServiceMetrics::RecordCheckpoint() { Add(kCheckpoints, 1); }

void ServiceMetrics::RecordSnapshotPublish() { Add(kSnapshotPublishes, 1); }

void ServiceMetrics::RecordReadLatency(Consistency mode, uint64_t ns) {
  const size_t m = static_cast<size_t>(mode);
  Shard& shard = Local();
  shard.counters[kReadLatencyHist +
                 m * MetricsSnapshot::kLatencyBuckets +
                 MetricsSnapshot::LatencyBucket(ns)]
      .fetch_add(1, std::memory_order_relaxed);
  shard.counters[kReadLatencySumNs + m].fetch_add(ns,
                                                  std::memory_order_relaxed);
}

void ServiceMetrics::RecordRecovery(uint64_t replayed,
                                    uint64_t truncated_tail_bytes) {
  Shard& shard = Local();
  shard.counters[kRecoveryReplayed].fetch_add(replayed,
                                              std::memory_order_relaxed);
  shard.counters[kRecoveryTruncatedBytes].fetch_add(
      truncated_tail_bytes, std::memory_order_relaxed);
}

void ServiceMetrics::RecordCheckpointShipped() {
  Add(kReplCheckpointsShipped, 1);
}

void ServiceMetrics::RecordSegmentShipped() { Add(kReplSegmentsShipped, 1); }

void ServiceMetrics::RecordShippedBytes(uint64_t bytes) {
  Add(kReplBytesShipped, bytes);
}

void ServiceMetrics::RecordReplReconnect() { Add(kReplReconnects, 1); }

void ServiceMetrics::RecordReplBackoffSleep() { Add(kReplBackoffSleeps, 1); }

void ServiceMetrics::RecordRebootstrap() { Add(kReplRebootstraps, 1); }

void ServiceMetrics::RecordReplApplied(uint64_t ops) {
  if (ops > 0) Add(kReplOpsApplied, ops);
}

void ServiceMetrics::RecordFailover() { Add(kReplFailovers, 1); }

MetricsSnapshot ServiceMetrics::Snapshot() const {
  std::array<uint64_t, kNumCounters> sum{};
  for (const Shard& shard : shards_) {
    for (size_t c = 0; c < kNumCounters; ++c) {
      sum[c] += shard.counters[c].load(std::memory_order_relaxed);
    }
  }
  MetricsSnapshot snap;
  // Unfold the (mode × served_from × staleness bucket) cube into the
  // three separate read aggregates.
  for (size_t m = 0; m < MetricsSnapshot::kModes; ++m) {
    for (size_t f = 0; f < 2; ++f) {
      for (size_t b = 0; b < MetricsSnapshot::kStalenessBuckets; ++b) {
        const uint64_t v =
            sum[kReadCube +
                (m * 2 + f) * MetricsSnapshot::kStalenessBuckets + b];
        snap.queries_by_mode[m] += v;
        (f == 0 ? snap.served_from_snapshot : snap.served_from_live) += v;
        snap.staleness_hist[b] += v;
      }
    }
  }
  snap.deadline_misses_read = sum[kDeadlineRead];
  snap.deadline_misses_wait = sum[kDeadlineWait];
  snap.rejected_invalid_argument = sum[kRejInvalidArgument];
  snap.rejected_unavailable = sum[kRejUnavailable];
  snap.rejected_not_supported = sum[kRejNotSupported];
  snap.read_batches = sum[kReadBatches];
  snap.read_batch_queries = sum[kReadBatchQueries];
  for (size_t b = 0; b < MetricsSnapshot::kBatchBuckets; ++b) {
    snap.read_batch_size_hist[b] = sum[kReadBatchHist + b];
    snap.write_batch_size_hist[b] = sum[kWriteBatchHist + b];
  }
  snap.write_batches = sum[kWriteBatches];
  snap.updates_applied = sum[kUpdatesApplied];
  snap.updates_noop = sum[kUpdatesNoop];
  snap.updates_rejected = sum[kUpdatesRejected];
  snap.wal_appends = sum[kWalAppends];
  snap.wal_appended_bytes = sum[kWalAppendedBytes];
  snap.wal_syncs = sum[kWalSyncs];
  snap.wal_durable_waits = sum[kWalDurableWaits];
  snap.wal_failures = sum[kWalFailures];
  snap.checkpoints = sum[kCheckpoints];
  snap.snapshot_publishes = sum[kSnapshotPublishes];
  snap.recovery_replayed = sum[kRecoveryReplayed];
  snap.recovery_truncated_bytes = sum[kRecoveryTruncatedBytes];
  snap.repl_checkpoints_shipped = sum[kReplCheckpointsShipped];
  snap.repl_segments_shipped = sum[kReplSegmentsShipped];
  snap.repl_bytes_shipped = sum[kReplBytesShipped];
  snap.repl_ops_applied = sum[kReplOpsApplied];
  snap.repl_reconnects = sum[kReplReconnects];
  snap.repl_backoff_sleeps = sum[kReplBackoffSleeps];
  snap.repl_rebootstraps = sum[kReplRebootstraps];
  snap.repl_failovers = sum[kReplFailovers];
  for (size_t m = 0; m < MetricsSnapshot::kModes; ++m) {
    for (size_t b = 0; b < MetricsSnapshot::kLatencyBuckets; ++b) {
      snap.read_latency_hist[m][b] =
          sum[kReadLatencyHist + m * MetricsSnapshot::kLatencyBuckets + b];
    }
    snap.read_latency_sum_ns[m] = sum[kReadLatencySumNs + m];
  }
  return snap;
}

}  // namespace dspc
