#include "dspc/api/service_metrics.h"

#include <cinttypes>
#include <cstdio>

#include "dspc/api/spc_service.h"

namespace dspc {

namespace {

const char* kStalenessLabels[MetricsSnapshot::kStalenessBuckets] = {
    "0", "1", "2", "3-4", "5-8", "9-16", "17-64", ">64"};
const char* kBatchLabels[MetricsSnapshot::kBatchBuckets] = {
    "1", "2-4", "5-16", "17-64", "65-256", "257-1K", "1K-4K", ">4K"};

void AppendHist(std::string* out, const char* const* labels,
                const uint64_t* buckets, size_t n) {
  char buf[64];
  for (size_t i = 0; i < n; ++i) {
    if (buckets[i] == 0) continue;  // dense dumps drown the signal
    std::snprintf(buf, sizeof(buf), " %s:%" PRIu64, labels[i], buckets[i]);
    *out += buf;
  }
}

}  // namespace

uint64_t MetricsSnapshot::StalenessSamples() const {
  uint64_t total = 0;
  for (const uint64_t b : staleness_hist) total += b;
  return total;
}

std::string MetricsSnapshot::ToString() const {
  const uint64_t total = TotalQueries();
  const uint64_t served = served_from_snapshot + served_from_live;
  char buf[256];
  std::string out = "SpcService metrics\n";

  std::snprintf(buf, sizeof(buf),
                "  queries: total=%" PRIu64 " fresh=%" PRIu64
                " snapshot=%" PRIu64 " bounded=%" PRIu64 "\n",
                total, queries_by_mode[0], queries_by_mode[1],
                queries_by_mode[2]);
  out += buf;

  std::snprintf(
      buf, sizeof(buf),
      "  served_from: snapshot=%" PRIu64 " (%.1f%%) live=%" PRIu64
      " (%.1f%%)\n",
      served_from_snapshot,
      served > 0 ? 100.0 * static_cast<double>(served_from_snapshot) /
                       static_cast<double>(served)
                 : 0.0,
      served_from_live,
      served > 0 ? 100.0 * static_cast<double>(served_from_live) /
                       static_cast<double>(served)
                 : 0.0);
  out += buf;

  out += "  staleness (generations behind, per served query):";
  AppendHist(&out, kStalenessLabels, staleness_hist.data(),
             kStalenessBuckets);
  if (StalenessSamples() == 0) out += " (none)";
  out += "\n";

  std::snprintf(buf, sizeof(buf),
                "  deadline_misses: reads=%" PRIu64
                " wait_for_snapshot=%" PRIu64 "\n",
                deadline_misses_read, deadline_misses_wait);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  rejected: invalid_argument=%" PRIu64
                " unavailable=%" PRIu64 " not_supported=%" PRIu64 "\n",
                rejected_invalid_argument, rejected_unavailable,
                rejected_not_supported);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  read_batches: calls=%" PRIu64 " queries=%" PRIu64
                " sizes:",
                read_batches, read_batch_queries);
  out += buf;
  AppendHist(&out, kBatchLabels, read_batch_size_hist.data(), kBatchBuckets);
  out += "\n";

  std::snprintf(buf, sizeof(buf),
                "  writes: batches=%" PRIu64 " applied=%" PRIu64
                " noop=%" PRIu64 " rejected=%" PRIu64 " sizes:",
                write_batches, updates_applied, updates_noop,
                updates_rejected);
  out += buf;
  AppendHist(&out, kBatchLabels, write_batch_size_hist.data(),
             kBatchBuckets);
  out += "\n";

  std::snprintf(buf, sizeof(buf),
                "  durability: wal_appends=%" PRIu64 " wal_bytes=%" PRIu64
                " wal_syncs=%" PRIu64 " durable_waits=%" PRIu64
                " failures=%" PRIu64 " checkpoints=%" PRIu64 "\n",
                wal_appends, wal_appended_bytes, wal_syncs,
                wal_durable_waits, wal_failures, checkpoints);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  recovery: replayed=%" PRIu64
                " truncated_tail_bytes=%" PRIu64 "\n",
                recovery_replayed, recovery_truncated_bytes);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  replication: ckpts_shipped=%" PRIu64
                " segments_shipped=%" PRIu64 " bytes_shipped=%" PRIu64
                " ops_applied=%" PRIu64 "\n",
                repl_checkpoints_shipped, repl_segments_shipped,
                repl_bytes_shipped, repl_ops_applied);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  replication_health: reconnects=%" PRIu64
                " backoff_sleeps=%" PRIu64 " rebootstraps=%" PRIu64
                " failovers=%" PRIu64 " applied_gen=%" PRIu64 " lag=%" PRIu64
                "\n",
                repl_reconnects, repl_backoff_sleeps, repl_rebootstraps,
                repl_failovers, replica_applied_generation, replica_lag);
  out += buf;
  return out;
}

void ServiceMetrics::RecordBatchTail(size_t queries) {
  if (queries == 0) return;  // an empty batch served nothing — no sample
  Add(kReadBatches, 1);
  Add(kReadBatchQueries, queries);
  Add(kReadBatchHist + MetricsSnapshot::BatchBucket(queries), 1);
}

void ServiceMetrics::RecordReadDeadlineMiss() { Add(kDeadlineRead, 1); }

void ServiceMetrics::RecordWaitDeadlineMiss() { Add(kDeadlineWait, 1); }

void ServiceMetrics::RecordRejected(Status::Code code) {
  switch (code) {
    case Status::Code::kInvalidArgument:
      Add(kRejInvalidArgument, 1);
      break;
    case Status::Code::kUnavailable:
      Add(kRejUnavailable, 1);
      break;
    case Status::Code::kNotSupported:
      Add(kRejNotSupported, 1);
      break;
    default:
      break;  // not an admission outcome; nothing to count
  }
}

void ServiceMetrics::RecordWrite(size_t batch_size, size_t applied,
                                 size_t noops, size_t rejected) {
  if (batch_size == 0) return;  // nothing admitted — not a write batch
  Shard& shard = Local();
  const auto add = [&shard](size_t counter, uint64_t delta) {
    shard.counters[counter].fetch_add(delta, std::memory_order_relaxed);
  };
  add(kWriteBatches, 1);
  add(kWriteBatchHist + MetricsSnapshot::BatchBucket(batch_size), 1);
  if (applied > 0) add(kUpdatesApplied, applied);
  if (noops > 0) add(kUpdatesNoop, noops);
  if (rejected > 0) add(kUpdatesRejected, rejected);
}

void ServiceMetrics::RecordWalAppend(uint64_t bytes) {
  Shard& shard = Local();
  shard.counters[kWalAppends].fetch_add(1, std::memory_order_relaxed);
  shard.counters[kWalAppendedBytes].fetch_add(bytes,
                                              std::memory_order_relaxed);
}

void ServiceMetrics::RecordWalSync() { Add(kWalSyncs, 1); }

void ServiceMetrics::RecordWalDurableWait() { Add(kWalDurableWaits, 1); }

void ServiceMetrics::RecordWalFailure() { Add(kWalFailures, 1); }

void ServiceMetrics::RecordCheckpoint() { Add(kCheckpoints, 1); }

void ServiceMetrics::RecordRecovery(uint64_t replayed,
                                    uint64_t truncated_tail_bytes) {
  Shard& shard = Local();
  shard.counters[kRecoveryReplayed].fetch_add(replayed,
                                              std::memory_order_relaxed);
  shard.counters[kRecoveryTruncatedBytes].fetch_add(
      truncated_tail_bytes, std::memory_order_relaxed);
}

void ServiceMetrics::RecordCheckpointShipped() {
  Add(kReplCheckpointsShipped, 1);
}

void ServiceMetrics::RecordSegmentShipped() { Add(kReplSegmentsShipped, 1); }

void ServiceMetrics::RecordShippedBytes(uint64_t bytes) {
  Add(kReplBytesShipped, bytes);
}

void ServiceMetrics::RecordReplReconnect() { Add(kReplReconnects, 1); }

void ServiceMetrics::RecordReplBackoffSleep() { Add(kReplBackoffSleeps, 1); }

void ServiceMetrics::RecordRebootstrap() { Add(kReplRebootstraps, 1); }

void ServiceMetrics::RecordReplApplied(uint64_t ops) {
  if (ops > 0) Add(kReplOpsApplied, ops);
}

void ServiceMetrics::RecordFailover() { Add(kReplFailovers, 1); }

MetricsSnapshot ServiceMetrics::Snapshot() const {
  std::array<uint64_t, kNumCounters> sum{};
  for (const Shard& shard : shards_) {
    for (size_t c = 0; c < kNumCounters; ++c) {
      sum[c] += shard.counters[c].load(std::memory_order_relaxed);
    }
  }
  MetricsSnapshot snap;
  // Unfold the (mode × served_from × staleness bucket) cube into the
  // three separate read aggregates.
  for (size_t m = 0; m < MetricsSnapshot::kModes; ++m) {
    for (size_t f = 0; f < 2; ++f) {
      for (size_t b = 0; b < MetricsSnapshot::kStalenessBuckets; ++b) {
        const uint64_t v =
            sum[kReadCube +
                (m * 2 + f) * MetricsSnapshot::kStalenessBuckets + b];
        snap.queries_by_mode[m] += v;
        (f == 0 ? snap.served_from_snapshot : snap.served_from_live) += v;
        snap.staleness_hist[b] += v;
      }
    }
  }
  snap.deadline_misses_read = sum[kDeadlineRead];
  snap.deadline_misses_wait = sum[kDeadlineWait];
  snap.rejected_invalid_argument = sum[kRejInvalidArgument];
  snap.rejected_unavailable = sum[kRejUnavailable];
  snap.rejected_not_supported = sum[kRejNotSupported];
  snap.read_batches = sum[kReadBatches];
  snap.read_batch_queries = sum[kReadBatchQueries];
  for (size_t b = 0; b < MetricsSnapshot::kBatchBuckets; ++b) {
    snap.read_batch_size_hist[b] = sum[kReadBatchHist + b];
    snap.write_batch_size_hist[b] = sum[kWriteBatchHist + b];
  }
  snap.write_batches = sum[kWriteBatches];
  snap.updates_applied = sum[kUpdatesApplied];
  snap.updates_noop = sum[kUpdatesNoop];
  snap.updates_rejected = sum[kUpdatesRejected];
  snap.wal_appends = sum[kWalAppends];
  snap.wal_appended_bytes = sum[kWalAppendedBytes];
  snap.wal_syncs = sum[kWalSyncs];
  snap.wal_durable_waits = sum[kWalDurableWaits];
  snap.wal_failures = sum[kWalFailures];
  snap.checkpoints = sum[kCheckpoints];
  snap.recovery_replayed = sum[kRecoveryReplayed];
  snap.recovery_truncated_bytes = sum[kRecoveryTruncatedBytes];
  snap.repl_checkpoints_shipped = sum[kReplCheckpointsShipped];
  snap.repl_segments_shipped = sum[kReplSegmentsShipped];
  snap.repl_bytes_shipped = sum[kReplBytesShipped];
  snap.repl_ops_applied = sum[kReplOpsApplied];
  snap.repl_reconnects = sum[kReplReconnects];
  snap.repl_backoff_sleeps = sum[kReplBackoffSleeps];
  snap.repl_rebootstraps = sum[kReplRebootstraps];
  snap.repl_failovers = sum[kReplFailovers];
  return snap;
}

}  // namespace dspc
