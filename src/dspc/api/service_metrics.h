// ServiceMetrics: lock-light aggregate counters for SpcService — the
// freshness-SLO surface (DESIGN.md §10).
//
// Per-response metadata (generation / served_from / staleness) tells one
// caller about one answer; an operator needs the distribution: how many
// reads ran at each consistency mode, what fraction was served from
// snapshots vs the live index, how stale those snapshots were, how often
// deadlines were missed and requests rejected, and how big the batches
// are. ServiceMetrics records exactly that, cheaply enough to sit on the
// serving hot path:
//
//   record     Relaxed fetch-adds on a per-thread counter shard. Threads
//              are striped over kShards cache-line-aligned shards by a
//              thread_local slot, so concurrent recorders almost never
//              touch the same cache line — no lock, no CAS loop, no
//              histogram mutex. The single-query hot path pays exactly
//              ONE increment: mode, serving source, and staleness bucket
//              are folded into one (mode × served_from × bucket) counter
//              cube that Snapshot() unfolds into the separate aggregates
//              — this keeps recording inside the service layer's ~2%
//              overhead budget (three separate increments measurably did
//              not).
//   snapshot   Snapshot() sums every shard into a plain MetricsSnapshot
//              struct — O(kShards * kNumCounters) relaxed loads, so
//              scraping is cheap enough for a tight monitoring loop.
//              Counters are monotone; two snapshots subtract to a rate.
//
// Totals are exact: every increment lands in exactly one shard and sums
// are over all shards. What is *not* guaranteed is cross-counter
// atomicity — a snapshot taken mid-record may see the mode counter of a
// read whose staleness bucket lands a nanosecond later. SLO aggregation
// tolerates that by construction.

#ifndef DSPC_API_SERVICE_METRICS_H_
#define DSPC_API_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

#include "dspc/common/status.h"

namespace dspc {

// Defined in api/spc_service.h; opaque declarations keep this header
// free-standing (the fixed underlying types make them complete here).
enum class Consistency : unsigned char;
enum class ServedFrom : unsigned char;

/// One aggregated, point-in-time view of a service's counters (the value
/// type ServiceMetrics::Snapshot() returns). Plain data: copy it, diff
/// two of them for a rate window, or ToString() it for logs.
struct MetricsSnapshot {
  static constexpr size_t kModes = 3;  ///< kFresh / kSnapshot / kBounded

  /// Staleness histogram buckets: generations the serving source trailed
  /// the index at admission, one count per served read call.
  ///   0 | 1 | 2 | 3-4 | 5-8 | 9-16 | 17-64 | >64
  static constexpr size_t kStalenessBuckets = 8;

  /// Batch-size histogram buckets (queries per read batch, updates per
  /// write batch): 1 | 2-4 | 5-16 | 17-64 | 65-256 | 257-1K | 1K-4K | >4K
  static constexpr size_t kBatchBuckets = 8;

  /// Read-latency histogram buckets, per consistency mode. Log-spaced:
  /// bucket b covers [256<<(b-1), 256<<b) ns (bucket 0 holds everything
  /// below 256 ns; the top bucket is unbounded, reaching past 100 ms).
  /// Populated by sampled timings (SpcService times 1-in-64 single
  /// queries and every batch), so counts are samples, not call totals —
  /// percentiles are unaffected by the uniform sampling.
  static constexpr size_t kLatencyBuckets = 20;

  // --- reads (served) ----------------------------------------------------
  /// Served queries per consistency mode (a batch adds its size), indexed
  /// by static_cast<size_t>(Consistency).
  std::array<uint64_t, kModes> queries_by_mode{};
  uint64_t served_from_snapshot = 0;  ///< queries answered from a pin
  uint64_t served_from_live = 0;      ///< queries answered live
  /// Per served *query* (a batch adds its size): generation-lag bucket
  /// of the serving source at admission. Sums to TotalQueries().
  std::array<uint64_t, kStalenessBuckets> staleness_hist{};

  /// Sampled wall-clock latency of served read calls, bucketed per
  /// consistency mode (see kLatencyBuckets). A batch contributes one
  /// sample for the whole call.
  std::array<std::array<uint64_t, kLatencyBuckets>, kModes>
      read_latency_hist{};
  std::array<uint64_t, kModes> read_latency_sum_ns{};  ///< sum of samples

  // --- misses and rejections ---------------------------------------------
  uint64_t deadline_misses_read = 0;  ///< reads that hit their deadline
  uint64_t deadline_misses_wait = 0;  ///< WaitForSnapshot timeouts
  uint64_t rejected_invalid_argument = 0;  ///< failed admission
  uint64_t rejected_unavailable = 0;       ///< unservable under options
  uint64_t rejected_not_supported = 0;     ///< configuration refusals

  // --- read batches ------------------------------------------------------
  uint64_t read_batches = 0;        ///< QueryBatch calls served
  uint64_t read_batch_queries = 0;  ///< queries across those batches
  std::array<uint64_t, kBatchBuckets> read_batch_size_hist{};

  // --- writes ------------------------------------------------------------
  uint64_t write_batches = 0;  ///< admitted write calls (incl. singles)
  std::array<uint64_t, kBatchBuckets> write_batch_size_hist{};
  uint64_t updates_applied = 0;   ///< WriteReport kApplied outcomes
  uint64_t updates_noop = 0;      ///< WriteReport kNoOp outcomes
  uint64_t updates_rejected = 0;  ///< WriteReport kRejected outcomes

  // --- durability (persist/, DESIGN.md §11; all zero on a service opened
  // without DurabilityOptions) ----------------------------------------------
  uint64_t wal_appends = 0;         ///< records appended to the WAL
  uint64_t wal_appended_bytes = 0;  ///< framed record bytes appended
  uint64_t wal_syncs = 0;           ///< WAL fsyncs (group commit or forced)
  uint64_t wal_durable_waits = 0;   ///< writes that waited on group commit
  uint64_t wal_failures = 0;        ///< fail-stop trips (sticky: stays 1)
  uint64_t checkpoints = 0;         ///< checkpoints published
  uint64_t snapshot_publishes = 0;  ///< mmap arenas published (§14)
  uint64_t recovery_replayed = 0;   ///< committed WAL ops replayed at Open
  uint64_t recovery_truncated_bytes = 0;  ///< torn tail bytes repaired

  // --- replication (persist/replication.h + api/replica_service.h,
  // DESIGN.md §13; all zero without a shipper/replica attached) -------------
  uint64_t repl_checkpoints_shipped = 0;  ///< checkpoint images shipped
  uint64_t repl_segments_shipped = 0;     ///< WAL segments started shipping
  uint64_t repl_bytes_shipped = 0;        ///< segment bytes shipped
  uint64_t repl_ops_applied = 0;          ///< replica: replay ops applied
  uint64_t repl_reconnects = 0;    ///< transport recoveries after faults
  uint64_t repl_backoff_sleeps = 0;  ///< retry backoff sleeps taken
  uint64_t repl_rebootstraps = 0;  ///< replica restarts from a checkpoint
  uint64_t repl_failovers = 0;     ///< Promote() calls completed

  /// Replica-only gauges, filled in by ReplicaService::Metrics() (zero in
  /// a snapshot taken directly from ServiceMetrics::Snapshot(), which
  /// only aggregates monotone counters).
  uint64_t replica_applied_generation = 0;  ///< generation the replica serves
  uint64_t replica_lag = 0;  ///< primary durable generation minus applied

  // --- hot-pair cache (core/pair_cache.h, DESIGN.md §15; all zero unless
  // DynamicSpcOptions::pair_cache.enabled). Filled in by
  // SpcService::Metrics() from the cache's own counters — the same
  // overlay pattern as the replica gauges above. ---------------------------
  uint64_t pair_cache_hits = 0;        ///< exact-generation lookup hits
  uint64_t pair_cache_misses = 0;      ///< lookups that computed + cached
  uint64_t pair_cache_insertions = 0;  ///< entries written (incl. upserts)
  uint64_t pair_cache_evictions = 0;   ///< live same-generation displacements

  /// Served queries across all modes (equals the staleness histogram's
  /// total population).
  uint64_t TotalQueries() const {
    return queries_by_mode[0] + queries_by_mode[1] + queries_by_mode[2];
  }

  /// Sum over the staleness histogram (== TotalQueries(); separate for
  /// tests asserting no sample is lost).
  uint64_t StalenessSamples() const;

  /// Total latency samples recorded for `mode`.
  uint64_t LatencySamples(size_t mode) const;

  /// Approximate quantile (q in [0,1]) of the sampled read latency for
  /// `mode`, in nanoseconds, interpolated linearly within the winning
  /// log bucket. 0 when no samples were recorded.
  uint64_t ReadLatencyQuantileNs(size_t mode, double q) const;

  /// Human-readable multi-line dump for logs, examples, and benches.
  std::string ToString() const;

  /// Prometheus text exposition (version 0.0.4) of every counter in this
  /// snapshot: the read cube aggregates, staleness and latency
  /// histograms (cumulative `le` buckets), durability and replication
  /// counters, and the replica gauges. Scrape-ready: serve it verbatim
  /// from a /metrics endpoint.
  std::string PrometheusText() const;

  /// Bucket index helpers (shared by recording and by tests asserting on
  /// specific buckets). Header-inline: StalenessBucket runs per served
  /// query.
  static size_t StalenessBucket(uint64_t lag) {
    if (lag <= 2) return static_cast<size_t>(lag);
    if (lag <= 4) return 3;
    if (lag <= 8) return 4;
    if (lag <= 16) return 5;
    if (lag <= 64) return 6;
    return 7;
  }
  static size_t BatchBucket(size_t size) {
    if (size <= 1) return 0;
    if (size <= 4) return 1;
    if (size <= 16) return 2;
    if (size <= 64) return 3;
    if (size <= 256) return 4;
    if (size <= 1024) return 5;
    if (size <= 4096) return 6;
    return 7;
  }
  static size_t LatencyBucket(uint64_t ns) {
    if (ns < 256) return 0;
    const size_t b = static_cast<size_t>(std::bit_width(ns >> 7)) - 1;
    return b < kLatencyBuckets ? b : kLatencyBuckets - 1;
  }
  /// Exclusive upper bound of latency bucket `b` in ns (the top bucket
  /// reports its nominal bound but is unbounded).
  static uint64_t LatencyBucketUpperNs(size_t b) {
    return uint64_t{256} << b;
  }
};

/// The recording side. All Record* methods are safe to call from any
/// number of threads concurrently; Snapshot() may race with recorders
/// (see the file comment for the exact guarantees).
class ServiceMetrics {
 public:
  ServiceMetrics() = default;
  ServiceMetrics(const ServiceMetrics&) = delete;
  ServiceMetrics& operator=(const ServiceMetrics&) = delete;

  /// One served read call: `queries` answers (1 for Query, pairs.size()
  /// for QueryBatch) under `mode`, answered by `from` with the source
  /// trailing the index by `staleness` generations at admission.
  /// `batch` marks QueryBatch calls (feeds the batch-size histogram).
  /// Header-inline: this is the serving hot path, and out-of-line the
  /// call alone measurably dents the service's ~2% overhead budget.
  void RecordRead(Consistency mode, ServedFrom from, uint64_t staleness,
                  size_t queries, bool batch);

  /// A read that returned kDeadlineExceeded instead of blocking.
  void RecordReadDeadlineMiss();

  /// A WaitForSnapshot that timed out before the snapshot caught up.
  void RecordWaitDeadlineMiss();

  /// A call refused at admission/routing with `code` (kInvalidArgument,
  /// kUnavailable, or kNotSupported; other codes are not counted).
  void RecordRejected(Status::Code code);

  /// One admitted write call of `batch_size` input updates with the given
  /// per-update outcome tallies (from the WriteReports).
  void RecordWrite(size_t batch_size, size_t applied, size_t noops,
                   size_t rejected);

  // --- durability (no-ops in spirit on non-durable services: never called) --

  /// One WAL record appended; `bytes` is its framed on-disk size.
  void RecordWalAppend(uint64_t bytes);

  /// One successful WAL fsync (group-commit flusher or a forced sync).
  void RecordWalSync();

  /// One write that blocked on WaitDurable (joined a group commit).
  void RecordWalDurableWait();

  /// The durability path went fail-stop (sticky; recorded once).
  void RecordWalFailure();

  /// One checkpoint published.
  void RecordCheckpoint();

  /// One mmap snapshot arena published (SpcService::PublishSnapshot).
  void RecordSnapshotPublish();

  /// One sampled read-call timing under `mode`. Out-of-line: callers
  /// sample (1-in-64 single queries; every batch), so this is off the
  /// per-query hot path by construction.
  void RecordReadLatency(Consistency mode, uint64_t ns);

  /// Recovery results, folded in once at SpcService::Open.
  void RecordRecovery(uint64_t replayed, uint64_t truncated_tail_bytes);

  // --- replication (persist/replication.h; never called without a
  // shipper or replica attached) --------------------------------------------

  /// One checkpoint image shipped through the transport.
  void RecordCheckpointShipped();

  /// One WAL segment started shipping (first byte reached the store).
  void RecordSegmentShipped();

  /// `bytes` of segment data shipped through the transport.
  void RecordShippedBytes(uint64_t bytes);

  /// Shipping or tailing resumed after transport faults.
  void RecordReplReconnect();

  /// One retry backoff sleep (shipper pump or replica tailer).
  void RecordReplBackoffSleep();

  /// A replica threw away its state and re-bootstrapped from a shipped
  /// checkpoint (fell behind retention, or its image was unreadable).
  void RecordRebootstrap();

  /// `ops` committed replay ops applied by a replica.
  void RecordReplApplied(uint64_t ops);

  /// One Promote() completed (the replica became a writable primary).
  void RecordFailover();

  /// Sums all shards into one consistent-enough view (monotone counters;
  /// see the file comment).
  MetricsSnapshot Snapshot() const;

 private:
  // Flat counter layout inside one shard; offsets into Shard::counters.
  // The read cube folds (mode, served_from, staleness bucket) into one
  // counter so a served single query records with ONE fetch-add:
  //   index = (mode * 2 + served_from) * kStalenessBuckets + bucket
  enum CounterIndex : size_t {
    kReadCube = 0,  // kModes * 2 * kStalenessBuckets entries
    kDeadlineRead = kReadCube + MetricsSnapshot::kModes * 2 *
                                    MetricsSnapshot::kStalenessBuckets,
    kDeadlineWait,
    kRejInvalidArgument,
    kRejUnavailable,
    kRejNotSupported,
    kReadBatches,
    kReadBatchQueries,
    kReadBatchHist,                                  // kBatchBuckets
    kWriteBatches = kReadBatchHist + MetricsSnapshot::kBatchBuckets,
    kWriteBatchHist,                                 // kBatchBuckets
    kUpdatesApplied = kWriteBatchHist + MetricsSnapshot::kBatchBuckets,
    kUpdatesNoop,
    kUpdatesRejected,
    kWalAppends,
    kWalAppendedBytes,
    kWalSyncs,
    kWalDurableWaits,
    kWalFailures,
    kCheckpoints,
    kSnapshotPublishes,
    kRecoveryReplayed,
    kRecoveryTruncatedBytes,
    kReplCheckpointsShipped,
    kReplSegmentsShipped,
    kReplBytesShipped,
    kReplOpsApplied,
    kReplReconnects,
    kReplBackoffSleeps,
    kReplRebootstraps,
    kReplFailovers,
    kReadLatencyHist,  // kModes * kLatencyBuckets entries
    kReadLatencySumNs = kReadLatencyHist + MetricsSnapshot::kModes *
                                               MetricsSnapshot::kLatencyBuckets,
    // kModes entries
    kNumCounters = kReadLatencySumNs + MetricsSnapshot::kModes,
  };

  /// Concurrency stripe count. Threads are assigned round-robin by a
  /// thread_local slot; 16 stripes keep even a saturated reader fleet
  /// mostly contention-free while Snapshot() stays trivially cheap.
  static constexpr size_t kShards = 16;

  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumCounters> counters{};
  };

  /// This thread's shard (stable per thread, assigned on first use; the
  /// slot is shared across instances — it is an index, not state).
  Shard& Local() {
    static std::atomic<size_t> next{0};
    thread_local const size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return shards_[slot];
  }

  void Add(size_t counter, uint64_t delta) {
    Local().counters[counter].fetch_add(delta, std::memory_order_relaxed);
  }

  /// Out-of-line tail of RecordRead for batch calls (not hot per query).
  void RecordBatchTail(size_t queries);

  std::array<Shard, kShards> shards_;
};

inline void ServiceMetrics::RecordRead(Consistency mode, ServedFrom from,
                                       uint64_t staleness, size_t queries,
                                       bool batch) {
  // The whole single-query hot path is this one relaxed increment. The
  // enums are opaque here, so the cube folds their raw values; the
  // static_asserts in spc_service.cc pin the coupling
  // (ServedFrom::kSnapshot == 0, kModes consistency values).
  const size_t cube =
      (static_cast<size_t>(mode) * 2 + static_cast<size_t>(from)) *
          MetricsSnapshot::kStalenessBuckets +
      MetricsSnapshot::StalenessBucket(staleness);
  Add(kReadCube + cube, queries);
  if (batch) [[unlikely]] {
    RecordBatchTail(queries);
  }
}

}  // namespace dspc

#endif  // DSPC_API_SERVICE_METRICS_H_
