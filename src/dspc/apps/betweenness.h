// Betweenness applications of shortest-path counting (paper §1).
//
// Shortest-path counts are the building block of betweenness centrality:
// the pair dependency of v on (s,t) is spc(s,v)*spc(v,t)/spc(s,t) when v
// lies on a shortest s-t path. Group betweenness B(C) (Puzis et al.,
// paper's Eq. in §1) additionally needs the number of shortest paths
// avoiding the whole group, which one BFS on G \ C provides. The
// SPC-Index answers the per-pair counts, so these analyses stay cheap on
// dynamic graphs.

#ifndef DSPC_APPS_BETWEENNESS_H_
#define DSPC_APPS_BETWEENNESS_H_

#include <vector>

#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/graph.h"

namespace dspc {

/// Exact betweenness centrality of every vertex via Brandes' algorithm
/// (unordered pairs, endpoints excluded). O(nm). The reference baseline.
std::vector<double> BrandesBetweenness(const Graph& graph);

/// Dependency of vertex v on pair (s, t): the fraction of shortest s-t
/// paths through v (0 when s,t disconnected or v is an endpoint).
/// Three index queries.
double PairDependency(const DynamicSpcIndex& index, Vertex s, Vertex t,
                      Vertex v);

/// Exact betweenness of a single vertex using index queries for all pairs.
/// O(n^2) queries — practical for analysis of a handful of vertices.
double VertexBetweenness(const DynamicSpcIndex& index, Vertex v);

/// Group betweenness B(C) = sum over pairs s,t not in C of
/// delta_st(C)/delta_st, where delta_st(C) counts shortest s-t paths
/// through at least one member of C. delta_st(C) = spc(s,t) minus the
/// number of equally-short paths avoiding C, which a BFS on G \ C yields.
double GroupBetweenness(const Graph& graph, const DynamicSpcIndex& index,
                        const std::vector<Vertex>& group);

}  // namespace dspc

#endif  // DSPC_APPS_BETWEENNESS_H_
