#include "dspc/apps/recommendation.h"

#include <algorithm>
#include <unordered_set>

namespace dspc {

std::vector<Recommendation> RecommendFriends(const DynamicSpcIndex& index,
                                             Vertex user, size_t k) {
  const Graph& graph = index.graph();
  std::vector<Recommendation> out;
  if (!graph.IsValidVertex(user)) return out;

  // Candidates: friends-of-friends that are not already friends.
  std::unordered_set<Vertex> seen;
  for (const Vertex f : graph.Neighbors(user)) {
    for (const Vertex ff : graph.Neighbors(f)) {
      if (ff == user || graph.HasEdge(user, ff)) continue;
      if (!seen.insert(ff).second) continue;
      const SpcResult r = index.Query(user, ff);
      out.push_back(Recommendation{ff, r.dist, r.count});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Recommendation& a, const Recommendation& b) {
              if (a.paths != b.paths) return a.paths > b.paths;
              return a.candidate < b.candidate;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace dspc
