// Friend recommendation by shortest-path counting (the paper's Figure 1
// motivation): among users at distance 2, more shortest paths mean more
// common friends, so rank candidates by spc(u, c).

#ifndef DSPC_APPS_RECOMMENDATION_H_
#define DSPC_APPS_RECOMMENDATION_H_

#include <vector>

#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/graph.h"

namespace dspc {

/// One recommendation: a non-friend candidate with its tie strength.
struct Recommendation {
  Vertex candidate;
  Distance dist;    ///< shortest distance from the user (>= 2)
  PathCount paths;  ///< number of shortest paths (= common friends at d=2)
};

/// Ranks the top-k friend candidates for `user`: vertices at distance 2
/// ordered by descending shortest-path count (i.e. common-friend count),
/// ties by smaller id. Counts come from the dynamic index, so rankings
/// stay current as the social graph changes.
std::vector<Recommendation> RecommendFriends(const DynamicSpcIndex& index,
                                             Vertex user, size_t k);

}  // namespace dspc

#endif  // DSPC_APPS_RECOMMENDATION_H_
