#include "dspc/apps/betweenness.h"

#include <algorithm>
#include <queue>

#include "dspc/baseline/bfs_counting.h"

namespace dspc {

std::vector<double> BrandesBetweenness(const Graph& graph) {
  const size_t n = graph.NumVertices();
  std::vector<double> centrality(n, 0.0);
  std::vector<Distance> dist(n);
  std::vector<double> sigma(n);
  std::vector<double> delta(n);
  std::vector<Vertex> order;  // vertices in non-decreasing distance
  order.reserve(n);

  for (Vertex s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), kInfDistance);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
    dist[s] = 0;
    sigma[s] = 1.0;
    std::queue<Vertex> queue;
    queue.push(s);
    while (!queue.empty()) {
      const Vertex v = queue.front();
      queue.pop();
      order.push_back(v);
      for (const Vertex w : graph.Neighbors(v)) {
        if (dist[w] == kInfDistance) {
          dist[w] = dist[v] + 1;
          queue.push(w);
        }
        if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
      }
    }
    // Dependency accumulation in reverse BFS order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const Vertex w = *it;
      for (const Vertex v : graph.Neighbors(w)) {
        if (dist[v] + 1 == dist[w]) {
          delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
      }
      if (w != s) centrality[w] += delta[w];
    }
  }
  // Each unordered pair was counted from both endpoints.
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

double PairDependency(const DynamicSpcIndex& index, Vertex s, Vertex t,
                      Vertex v) {
  if (v == s || v == t || s == t) return 0.0;
  const SpcResult st = index.Query(s, t);
  if (st.count == 0) return 0.0;
  const SpcResult sv = index.Query(s, v);
  if (sv.dist == kInfDistance || sv.dist >= st.dist) return 0.0;
  const SpcResult vt = index.Query(v, t);
  if (vt.dist == kInfDistance || sv.dist + vt.dist != st.dist) return 0.0;
  return static_cast<double>(sv.count) * static_cast<double>(vt.count) /
         static_cast<double>(st.count);
}

double VertexBetweenness(const DynamicSpcIndex& index, Vertex v) {
  const size_t n = index.graph().NumVertices();
  double total = 0.0;
  for (Vertex s = 0; s < n; ++s) {
    if (s == v) continue;
    for (Vertex t = s + 1; t < n; ++t) {
      if (t == v) continue;
      total += PairDependency(index, s, t, v);
    }
  }
  return total;
}

double GroupBetweenness(const Graph& graph, const DynamicSpcIndex& index,
                        const std::vector<Vertex>& group) {
  const size_t n = graph.NumVertices();
  std::vector<uint8_t> in_group(n, 0);
  for (const Vertex v : group) in_group[v] = 1;

  // BFS with counting on G \ C, reused per source.
  std::vector<Distance> dist(n);
  std::vector<PathCount> count(n);

  double total = 0.0;
  for (Vertex s = 0; s < n; ++s) {
    if (in_group[s] != 0) continue;
    std::fill(dist.begin(), dist.end(), kInfDistance);
    std::fill(count.begin(), count.end(), 0);
    dist[s] = 0;
    count[s] = 1;
    std::queue<Vertex> queue;
    queue.push(s);
    while (!queue.empty()) {
      const Vertex v = queue.front();
      queue.pop();
      for (const Vertex w : graph.Neighbors(v)) {
        if (in_group[w] != 0) continue;  // paths must avoid the group
        if (dist[w] == kInfDistance) {
          dist[w] = dist[v] + 1;
          count[w] = count[v];
          queue.push(w);
        } else if (dist[w] == dist[v] + 1) {
          count[w] += count[v];
        }
      }
    }
    for (Vertex t = s + 1; t < n; ++t) {
      if (in_group[t] != 0) continue;
      const SpcResult st = index.Query(s, t);
      if (st.count == 0) continue;
      // Shortest s-t paths avoiding C entirely (same length only).
      const PathCount avoiding = dist[t] == st.dist ? count[t] : 0;
      const PathCount through = st.count - avoiding;
      total += static_cast<double>(through) / static_cast<double>(st.count);
    }
  }
  return total;
}

}  // namespace dspc
