// dspc_reader: a stateless read-only serving process over a snapshot
// publish directory (DESIGN.md §14).
//
// Wraps MappedReaderService in a line protocol on stdin/stdout so the
// multi-process integration test (tests/multiprocess_serving_test.cc)
// — and a curious operator with a pipe — can drive real separate-process
// readers:
//
//   q <s> <t>                  kSnapshot query
//   mq <min_gen> <s> <t>       kSnapshot query with a min_generation floor
//   bq <max_lag> <min_gen> <s> <t>
//                              kBoundedStaleness query
//     reply: a <generation> <staleness> <dist> <count>
//            (dist = -1 for unreachable)
//     error: e <status-code> <message...>
//   refresh                    poll PUBSTATE, adopt a newer generation
//     reply: ok <generation>   (or e ...)
//   gen                        report serving state
//     reply: gen <adopted> <publisher> <wal_seq>
//   prom                       Prometheus exposition of the reader's
//                              metrics, terminated by a lone "." line
//   quit                       exit 0
//
// Every reply is a single line (except prom) flushed immediately, so a
// parent process can pipeline commands without deadlocking.
//
// Usage: dspc_reader <publish-dir> [--owner=NAME] [--poll-ms=N] [--no-pins]

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "dspc/api/mapped_reader_service.h"
#include "dspc/common/status.h"
#include "dspc/common/types.h"

namespace {

using dspc::Consistency;
using dspc::MappedReaderService;
using dspc::ReadOptions;

void ReplyError(const dspc::Status& st) {
  std::cout << "e " << static_cast<int>(st.code()) << " " << st.message()
            << "\n"
            << std::flush;
}

void RunQuery(const MappedReaderService& reader, dspc::Vertex s,
              dspc::Vertex t, const ReadOptions& options) {
  auto resp = reader.Query(s, t, options);
  if (!resp.ok()) {
    ReplyError(resp.status());
    return;
  }
  const long long dist = resp->result.dist == dspc::kInfDistance
                             ? -1
                             : static_cast<long long>(resp->result.dist);
  std::cout << "a " << resp->generation << " " << resp->staleness << " "
            << dist << " " << resp->result.count << "\n"
            << std::flush;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  dspc::MappedReaderOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--owner=", 0) == 0) {
      options.pin_owner = arg.substr(8);
    } else if (arg.rfind("--poll-ms=", 0) == 0) {
      options.poll_interval =
          std::chrono::milliseconds(std::stol(arg.substr(10)));
    } else if (arg == "--no-pins") {
      options.write_pins = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (dir.empty()) {
    std::fprintf(
        stderr,
        "usage: dspc_reader <publish-dir> [--owner=NAME] [--poll-ms=N] "
        "[--no-pins]\n");
    return 2;
  }

  auto reader = MappedReaderService::Open(dir, std::move(options));
  if (!reader.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  // The parent knows the reader is serving when this line appears.
  std::cout << "ready " << (*reader)->Generation() << "\n" << std::flush;

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit") break;
    if (cmd == "q") {
      dspc::Vertex s = 0, t = 0;
      in >> s >> t;
      RunQuery(**reader, s, t,
               {.consistency = Consistency::kSnapshot});
    } else if (cmd == "mq") {
      uint64_t min_gen = 0;
      dspc::Vertex s = 0, t = 0;
      in >> min_gen >> s >> t;
      RunQuery(**reader, s, t,
               {.consistency = Consistency::kSnapshot,
                .min_generation = min_gen});
    } else if (cmd == "bq") {
      uint64_t max_lag = 0, min_gen = 0;
      dspc::Vertex s = 0, t = 0;
      in >> max_lag >> min_gen >> s >> t;
      RunQuery(**reader, s, t,
               {.consistency = Consistency::kBoundedStaleness,
                .max_lag = max_lag,
                .min_generation = min_gen});
    } else if (cmd == "refresh") {
      if (dspc::Status st = (*reader)->Refresh(); !st.ok()) {
        ReplyError(st);
      } else {
        std::cout << "ok " << (*reader)->Generation() << "\n" << std::flush;
      }
    } else if (cmd == "gen") {
      std::cout << "gen " << (*reader)->Generation() << " "
                << (*reader)->PublisherGeneration() << " "
                << (*reader)->WalSeq() << "\n"
                << std::flush;
    } else if (cmd == "prom") {
      std::cout << (*reader)->Metrics().PrometheusText() << ".\n"
                << std::flush;
    } else {
      std::cout << "e 3 unknown command: " << cmd << "\n" << std::flush;
    }
  }
  return 0;
}
