#!/usr/bin/env python3
"""Docs smoke checker: keep README/docs honest.

Two checks, both cheap enough for every CI run:

1. Intra-repo markdown links resolve. Every `[text](target)` in the
   checked files whose target is not an absolute URL must point at a
   file (or directory) that exists, relative to the file containing
   the link (fragments are stripped; pure-fragment links are skipped).

2. Fenced ```cpp snippets compile. Each block is extracted and
   compiled with `-fsyntax-only` against the real headers, so an API
   rename breaks the docs job instead of silently rotting the guide.
   Blocks are statement sequences; the harness wraps each one in a
   function with a prelude that provides the common includes, a
   variadic `use(...)` sink, and `extern` declarations for the objects
   the guide's prose establishes (`service`, `graph`). A block whose
   first line is `// docs:no-compile` is skipped; a block containing
   `#include` or `int main` is compiled verbatim as its own TU.

Usage: tools/check_docs.py [--no-compile] [files...]
Defaults to README.md, DESIGN.md, ROADMAP.md, and docs/*.md. Exits
non-zero on any failure, listing every offender.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w[\w+-]*)?\s*$")

SNIPPET_PRELUDE = """\
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "dspc/api/spc_service.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/update_stream.h"

using namespace dspc;

// Sink for values the guide's snippets inspect but do not consume.
template <typename... Args>
void use(Args&&...) {}

// Objects the guide's prose establishes before later snippets use them.
extern SpcService service;
extern Graph graph;
"""


def default_files():
    files = ["README.md", "DESIGN.md", "ROADMAP.md"]
    docs = os.path.join(REPO, "docs")
    if os.path.isdir(docs):
        files += [
            os.path.join("docs", f)
            for f in sorted(os.listdir(docs))
            if f.endswith(".md")
        ]
    return [f for f in files if os.path.exists(os.path.join(REPO, f))]


def check_links(relpath, text, errors):
    base = os.path.dirname(os.path.join(REPO, relpath))
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:  # code, not prose: `arr[i](x)` is not a link
            continue
        for target in LINK_RE.findall(line):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure fragment
                continue
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                errors.append(
                    f"{relpath}:{lineno}: broken link -> {target}")


def extract_cpp_blocks(text):
    blocks = []
    lines = text.splitlines()
    in_block = False
    lang = None
    start = 0
    buf = []
    for lineno, line in enumerate(lines, 1):
        fence = FENCE_RE.match(line)
        if fence and not in_block:
            in_block, lang, start, buf = True, fence.group(1), lineno + 1, []
        elif line.strip() == "```" and in_block:
            if lang == "cpp":
                blocks.append((start, "\n".join(buf)))
            in_block = False
        elif in_block:
            buf.append(line)
    return blocks


def find_compiler():
    for cand in (os.environ.get("CXX"), "c++", "g++", "clang++"):
        if not cand:
            continue
        try:
            subprocess.run([cand, "--version"], capture_output=True,
                           check=True)
            return cand
        except (OSError, subprocess.CalledProcessError):
            continue
    return None


def compile_snippet(compiler, relpath, lineno, body, index, errors):
    if body.lstrip().startswith("// docs:no-compile"):
        return
    if "#include" in body or re.search(r"\bint\s+main\b", body):
        source = body
    else:
        indented = "\n".join("  " + line for line in body.splitlines())
        source = (f"{SNIPPET_PRELUDE}\n"
                  f"void Snippet_{index}() {{\n{indented}\n}}\n")
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".cc", delete=False) as tu:
        tu.write(source)
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [compiler, "-std=c++20", "-fsyntax-only",
             "-I", os.path.join(REPO, "src"), "-x", "c++", tu_path],
            capture_output=True, text=True)
        if proc.returncode != 0:
            detail = proc.stderr.strip().splitlines()
            errors.append(
                f"{relpath}:{lineno}: cpp snippet does not compile:\n    "
                + "\n    ".join(detail[:12]))
    finally:
        os.unlink(tu_path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="markdown files to check")
    parser.add_argument("--no-compile", action="store_true",
                        help="only check links")
    args = parser.parse_args()

    files = args.files or default_files()
    errors = []
    compiler = None if args.no_compile else find_compiler()
    if not args.no_compile and compiler is None:
        print("check_docs: no C++ compiler found; snippet check skipped",
              file=sys.stderr)

    snippets = 0
    for relpath in files:
        with open(os.path.join(REPO, relpath), encoding="utf-8") as f:
            text = f.read()
        check_links(relpath, text, errors)
        if compiler:
            for lineno, body in extract_cpp_blocks(text):
                compile_snippet(compiler, relpath, lineno, body, snippets,
                                errors)
                snippets += 1

    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"check_docs: FAILED ({len(errors)} problem(s))",
              file=sys.stderr)
        return 1
    print(f"check_docs: OK ({len(files)} file(s), {snippets} snippet(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
