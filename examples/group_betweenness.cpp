// Group betweenness monitoring (paper Section 1, Puzis et al.).
//
// Group betweenness B(C) measures how much of the network's shortest-path
// traffic a vertex set C intercepts — e.g. placing monitors or
// influencers. Shortest-path *counting* is its building block; the
// dynamic index keeps B(C) computable as the network changes.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "dspc/apps/betweenness.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/generators.h"

using namespace dspc;

namespace {

void Report(const Graph& g, const DynamicSpcIndex& index,
            const std::vector<Vertex>& group) {
  std::printf("  B({");
  for (size_t i = 0; i < group.size(); ++i) {
    std::printf(i == 0 ? "%u" : ", %u", group[i]);
  }
  std::printf("}) = %.2f\n", GroupBetweenness(g, index, group));
}

}  // namespace

int main() {
  // A small-world communication network.
  Graph net = GenerateWattsStrogatz(600, 3, 0.1, 99);
  std::printf("network: %zu nodes, %zu links\n", net.NumVertices(),
              net.NumEdges());
  DynamicSpcIndex index(net);

  // Pick the three highest-betweenness vertices as the candidate group.
  const std::vector<double> bc = BrandesBetweenness(index.graph());
  std::vector<Vertex> by_score(index.graph().NumVertices());
  for (Vertex v = 0; v < by_score.size(); ++v) by_score[v] = v;
  std::sort(by_score.begin(), by_score.end(),
            [&](Vertex a, Vertex b) { return bc[a] > bc[b]; });
  const std::vector<Vertex> group = {by_score[0], by_score[1], by_score[2]};

  std::printf("\ntop-3 central vertices: %u (%.1f), %u (%.1f), %u (%.1f)\n",
              by_score[0], bc[by_score[0]], by_score[1], bc[by_score[1]],
              by_score[2], bc[by_score[2]]);

  std::printf("\n=== initial coverage ===\n");
  Report(index.graph(), index, group);
  Report(index.graph(), index, {group[0]});

  // A new shortcut appears between two distant regions: traffic reroutes.
  std::printf("\n=== network change: shortcut 10 - 300 appears ===\n");
  index.InsertEdge(10, 300);
  Report(index.graph(), index, group);

  // A monitored vertex loses links (e.g. partial failure).
  std::printf("\n=== network change: vertex %u loses 2 links ===\n", group[0]);
  const std::vector<Vertex> nbrs = index.graph().Neighbors(group[0]);
  for (size_t i = 0; i < 2 && i < nbrs.size(); ++i) {
    index.RemoveEdge(group[0], nbrs[i]);
  }
  Report(index.graph(), index, group);

  std::printf(
      "\nEach B(C) evaluation used exact shortest-path counts from the\n"
      "maintained index plus one avoidance BFS per source — no rebuilds.\n");
  return 0;
}
