// Streaming update monitor: sustained hybrid insert/delete stream with
// live query service — the operational scenario of the paper's Figure 10
// experiment, reported as throughput/latency instead of a table.
//
// Serving goes through SpcService under RefreshPolicy::kBackground
// (DESIGN.md §7, §9): kSnapshot reads pin the published snapshot and
// never wait for maintenance; each update returns a WriteToken, and one
// token-carrying kFresh read per burst demonstrates read-your-writes
// without quiescing the stream; the read carries a deadline so it can
// never stall the monitor behind a slow writer. The tail latency column
// is the point — p99 stays at snapshot-merge cost even while updates
// churn the mutable index — and the final ServiceMetrics dump shows
// where every answer actually came from and how stale it was, fleet-wide
// instead of per response (DESIGN.md §10).

// A closing stanza replays a short durable stream through a WAL-shipping
// primary with a hot-standby replica (DESIGN.md §13): the replica tails
// the shipped log and serves with honest primary-relative staleness, and
// its metrics dump carries the replication counters.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "dspc/api/replica_service.h"
#include "dspc/api/spc_service.h"
#include "dspc/common/rng.h"
#include "dspc/common/stats.h"
#include "dspc/common/stopwatch.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"
#include "dspc/persist/env.h"
#include "dspc/persist/replication.h"

using namespace dspc;

int main() {
  Graph g = GenerateRmat(12, 34000, 5);
  std::printf("graph: %zu vertices, %zu edges\n", g.NumVertices(),
              g.NumEdges());

  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kBackground;
  options.snapshot.rebuild_after_queries = 4;

  Stopwatch build_watch;
  SpcService service(g, options);
  std::printf("index built in %.2fs (%zu label entries)\n",
              build_watch.ElapsedSeconds(),
              service.engine().index().SizeStats().total_entries);

  // 200 insertions + 20 deletions, uniformly interleaved.
  const std::vector<Update> stream =
      MakeHybridStream(service.engine().graph(), 200, 20, 9);

  SampleStats inc_ms;
  SampleStats dec_ms;
  SampleStats query_us;
  Rng rng(13);
  const size_t n = service.NumVertices();
  uint64_t max_lag = 0;  // generations a served answer trailed by
  size_t snapshot_served = 0;
  size_t unavailable = 0;

  // Non-blocking reads: serve whatever snapshot is published, however
  // stale — the monitor's latency numbers must never include maintenance.
  ReadOptions monitor_read;
  monitor_read.consistency = Consistency::kSnapshot;

  Stopwatch run_watch;
  for (size_t i = 0; i < stream.size(); ++i) {
    Stopwatch op;
    const auto applied = service.ApplyUpdates({&stream[i], 1});
    const double ms = op.ElapsedMillis();
    (stream[i].kind == Update::Kind::kInsert ? inc_ms : dec_ms).Add(ms);

    // Serve a small query batch between updates, as a live system would.
    for (int q = 0; q < 20; ++q) {
      const auto s = static_cast<Vertex>(rng.NextBounded(n));
      const auto t = static_cast<Vertex>(rng.NextBounded(n));
      Stopwatch qw;
      const auto resp = service.Query(s, t, monitor_read);
      query_us.Add(qw.ElapsedMicros());
      if (resp.ok()) {
        ++snapshot_served;
        if (resp->staleness > max_lag) max_lag = resp->staleness;
      } else {
        ++unavailable;  // only possible before the first publish
      }
    }

    // Read-your-writes spot check: once per burst of 50, re-read the
    // just-updated edge with the write's own token; the service escalates
    // to the live index whenever the snapshot still trails the token.
    if ((i + 1) % 50 == 0 && applied.ok()) {
      ReadOptions ryw;
      ryw.min_generation = applied->token.generation;
      // Bound the read-your-writes check: it may ride the live index
      // (the snapshot can trail the token), and a monitor must never
      // hang behind the writer lock.
      ryw.timeout = std::chrono::milliseconds(250);
      const auto check =
          service.Query(stream[i].edge.u, stream[i].edge.v, ryw);
      const bool inserted = stream[i].kind == Update::Kind::kInsert;
      const bool observed =
          check.ok() && ((check->result.dist == 1) == inserted);
      std::printf("  after %3zu updates: median ins %.2fms, qry p50 %.1fus "
                  "p99 %.1fus | token read %s its write (gen %llu, %s)\n",
                  i + 1, inc_ms.Median(), query_us.Median(),
                  query_us.Percentile(99.0),
                  observed ? "observed" : "MISSED",
                  static_cast<unsigned long long>(
                      applied->token.generation),
                  check.ok() && check->served_from == ServedFrom::kSnapshot
                      ? "snapshot"
                      : "live");
    }
  }

  const double wall = run_watch.ElapsedSeconds();
  std::printf("\nprocessed %zu updates + %zu queries in %.2fs\n", stream.size(),
              query_us.count(), wall);
  std::printf("insertions: median %.2fms  p75 %.2fms  max %.2fms\n",
              inc_ms.Median(), inc_ms.P75(), inc_ms.Max());
  std::printf("deletions:  median %.2fms  p75 %.2fms  max %.2fms\n",
              dec_ms.Median(), dec_ms.P75(), dec_ms.Max());
  std::printf("queries:    p50 %.1fus  p75 %.1fus  p99 %.1fus  max %.1fus\n",
              query_us.Median(), query_us.P75(), query_us.Percentile(99.0),
              query_us.Max());
  std::printf("served:     %zu from pinned snapshots, %zu unavailable "
              "(pre-publish), max staleness %llu generations\n",
              snapshot_served, unavailable,
              static_cast<unsigned long long>(max_lag));
  const SnapshotManager* snaps = service.engine().snapshots();
  std::printf("snapshots:  %zu rebuilt (%zu in background), %zu retired\n",
              service.engine().SnapshotRebuilds(),
              snaps->BackgroundRebuilds(), snaps->RetiredSnapshots());
  // The aggregate SLO surface: the same served-from/staleness story the
  // manual counters above sampled, but counted exactly, per mode, by the
  // service itself.
  std::printf("\n%s", service.Metrics().ToString().c_str());
  std::printf(
      "\nReconstruction after every update would have cost ~%.0fs total;\n"
      "the dynamic algorithms served the same stream in %.2fs with the\n"
      "rebuilds off the query path.\n",
      build_watch.ElapsedSeconds() * static_cast<double>(stream.size()), wall);

  // --- replicated serving: a hot standby over the same stream shape ---------
  std::printf("\n--- hot standby (WAL shipping, DESIGN.md §13) ---\n");
  FileSystem* fs = FileSystem::Default();
  const std::string wal_dir = "/tmp/dspc_monitor_wal";
  (void)fs->CreateDir(wal_dir);
  if (auto names = fs->ListDir(wal_dir); names.ok()) {
    for (const std::string& name : *names) {
      (void)fs->RemoveFile(wal_dir + "/" + name);
    }
  }
  DurabilityOptions durability;
  durability.dir = wal_dir;
  durability.sync = WalSyncPolicy::kEveryWrite;
  auto primary = SpcService::Open(GenerateRmat(10, 8000, 7), durability);
  if (!primary.ok()) {
    std::fprintf(stderr, "primary open failed: %s\n",
                 primary.status().ToString().c_str());
    return 1;
  }
  InProcessTransport transport;  // swap for DirectoryTransport to cross hosts
  auto shipper = (*primary)->NewShipper(&transport);
  if (!shipper.ok()) {
    std::fprintf(stderr, "shipper failed: %s\n",
                 shipper.status().ToString().c_str());
    return 1;
  }
  (*shipper)->Start();
  ReplicaOptions replica_options;
  replica_options.transport = &transport;
  replica_options.bootstrap_timeout = std::chrono::seconds(30);
  auto replica = ReplicaService::Open(replica_options);
  if (!replica.ok()) {
    std::fprintf(stderr, "replica open failed: %s\n",
                 replica.status().ToString().c_str());
    return 1;
  }

  const std::vector<Update> repl_stream =
      MakeHybridStream((*primary)->engine().graph(), 60, 10, 21);
  for (const Update& update : repl_stream) {
    (void)(*primary)->ApplyUpdates({&update, 1}, {.durable = true});
  }
  // Wait (bounded) for the standby to drain the shipped log.
  const uint64_t primary_gen = (*primary)->Generation();
  Stopwatch drain;
  while ((*replica)->AppliedGeneration() < primary_gen &&
         drain.ElapsedSeconds() < 30.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // A bounded-staleness read the replica must answer honestly: with the
  // standby caught up, max_lag=0 serves; behind, it refuses rather than
  // serving silently stale data.
  ReadOptions bounded;
  bounded.consistency = Consistency::kBoundedStaleness;
  bounded.max_lag = 0;
  const auto replicated = (*replica)->Query(0, 1, bounded);
  std::printf("primary at generation %llu; replica applied %llu; "
              "max_lag=0 read %s (staleness %llu)\n",
              static_cast<unsigned long long>(primary_gen),
              static_cast<unsigned long long>((*replica)->AppliedGeneration()),
              replicated.ok() ? "served" : "refused",
              replicated.ok()
                  ? static_cast<unsigned long long>(replicated->staleness)
                  : 0ull);
  (*replica)->Stop();
  (*shipper)->Stop();
  // The replica's dump: engine counters plus the replication section
  // (ops applied, reconnects, re-bootstraps) and the lag gauges.
  std::printf("\n%s", (*replica)->Metrics().ToString().c_str());
  return 0;
}
