// Streaming update monitor: sustained hybrid insert/delete stream with
// live query service — the operational scenario of the paper's Figure 10
// experiment, reported as throughput/latency instead of a table.
//
// Serving runs under RefreshPolicy::kBackground (DESIGN.md §7): queries
// pin the published snapshot and never wait for maintenance; a worker
// thread rebuilds stale snapshots behind the stream. The tail latency
// column is the point — p99 stays at snapshot-merge cost even while
// updates churn the mutable index.

#include <cstdio>

#include "dspc/common/rng.h"
#include "dspc/common/stats.h"
#include "dspc/common/stopwatch.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"

using namespace dspc;

int main() {
  Graph g = GenerateRmat(12, 34000, 5);
  std::printf("graph: %zu vertices, %zu edges\n", g.NumVertices(),
              g.NumEdges());

  DynamicSpcOptions options;
  options.snapshot_refresh = RefreshPolicy::kBackground;
  options.snapshot_rebuild_after_queries = 4;

  Stopwatch build_watch;
  DynamicSpcIndex index(g, options);
  std::printf("index built in %.2fs (%zu label entries)\n",
              build_watch.ElapsedSeconds(),
              index.index().SizeStats().total_entries);

  // 200 insertions + 20 deletions, uniformly interleaved.
  const std::vector<Update> stream = MakeHybridStream(index.graph(), 200, 20, 9);

  SampleStats inc_ms;
  SampleStats dec_ms;
  SampleStats query_us;
  Rng rng(13);
  const size_t n = index.graph().NumVertices();
  uint64_t max_lag = 0;  // generations the served snapshot trailed by

  Stopwatch run_watch;
  for (size_t i = 0; i < stream.size(); ++i) {
    Stopwatch op;
    index.Apply(stream[i]);
    const double ms = op.ElapsedMillis();
    (stream[i].kind == Update::Kind::kInsert ? inc_ms : dec_ms).Add(ms);

    // Serve a small query batch between updates, as a live system would.
    for (int q = 0; q < 20; ++q) {
      const auto s = static_cast<Vertex>(rng.NextBounded(n));
      const auto t = static_cast<Vertex>(rng.NextBounded(n));
      Stopwatch qw;
      volatile PathCount sink = index.Query(s, t).count;
      (void)sink;
      query_us.Add(qw.ElapsedMicros());
    }
    if (const auto pin = index.PinSnapshot()) {
      const uint64_t lag = index.Generation() - pin.generation;
      if (lag > max_lag) max_lag = lag;
    }

    if ((i + 1) % 50 == 0) {
      std::printf("  after %3zu updates: median ins %.2fms, qry p50 %.1fus "
                  "p99 %.1fus\n",
                  i + 1, inc_ms.Median(), query_us.Median(),
                  query_us.Percentile(99.0));
    }
  }

  const double wall = run_watch.ElapsedSeconds();
  std::printf("\nprocessed %zu updates + %zu queries in %.2fs\n", stream.size(),
              query_us.count(), wall);
  std::printf("insertions: median %.2fms  p75 %.2fms  max %.2fms\n",
              inc_ms.Median(), inc_ms.P75(), inc_ms.Max());
  std::printf("deletions:  median %.2fms  p75 %.2fms  max %.2fms\n",
              dec_ms.Median(), dec_ms.P75(), dec_ms.Max());
  std::printf("queries:    p50 %.1fus  p75 %.1fus  p99 %.1fus  max %.1fus\n",
              query_us.Median(), query_us.P75(), query_us.Percentile(99.0),
              query_us.Max());
  std::printf(
      "snapshots:  %zu rebuilt (%zu in background), %zu retired, max "
      "staleness %llu generations\n",
      index.SnapshotRebuilds(), index.snapshots()->BackgroundRebuilds(),
      index.snapshots()->RetiredSnapshots(),
      static_cast<unsigned long long>(max_lag));
  std::printf(
      "\nReconstruction after every update would have cost ~%.0fs total;\n"
      "the dynamic algorithms served the same stream in %.2fs with the\n"
      "rebuilds off the query path.\n",
      build_watch.ElapsedSeconds() * static_cast<double>(stream.size()), wall);
  return 0;
}
