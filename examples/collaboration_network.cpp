// Collaboration-network analytics (paper Appendix A, the Erdős-number
// scenario): distances measure collaboration closeness, but the *number*
// of shortest collaboration chains separates strongly-connected peers
// from coincidental ones. New papers keep arriving — vertex and edge
// insertions — and the index absorbs them incrementally.
//
// Also demonstrates index persistence: the built index is saved and
// reloaded, the workflow for shipping a prebuilt index alongside a
// dataset.

#include <cstdio>
#include <string>

#include "dspc/core/dynamic_spc.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/generators.h"

using namespace dspc;

int main() {
  // Co-authorship networks are scale-free with dense cores; BA is the
  // classic model for them.
  const size_t kAuthors = 3000;
  Graph coauthor = GenerateBarabasiAlbert(kAuthors, 2, 1913);
  std::printf("collaboration network: %zu authors, %zu co-author pairs\n",
              coauthor.NumVertices(), coauthor.NumEdges());

  // The highest-degree author plays Erdős.
  Vertex erdos = 0;
  for (Vertex v = 1; v < coauthor.NumVertices(); ++v) {
    if (coauthor.Degree(v) > coauthor.Degree(erdos)) erdos = v;
  }

  DynamicSpcIndex index(coauthor);
  std::printf("built index; author %u (degree %zu) is our 'Erdos'\n\n", erdos,
              index.graph().Degree(erdos));

  auto report = [&](Vertex author) {
    const SpcResult r = index.Query(erdos, author);
    if (r.count == 0) {
      std::printf("  author %-5u : no collaboration chain\n", author);
    } else {
      std::printf(
          "  author %-5u : Erdos number %u via %llu shortest chain(s)\n",
          author, r.dist, static_cast<unsigned long long>(r.count));
    }
  };

  std::printf("Erdos numbers for a few authors:\n");
  for (Vertex a : {Vertex(77), Vertex(555), Vertex(1234), Vertex(2999)}) {
    report(a);
  }

  // A new PhD student publishes their first two papers.
  std::printf("\na new author joins with two papers:\n");
  const Vertex newbie = index.AddVertex();
  index.InsertEdge(newbie, 77);
  index.InsertEdge(newbie, 2999);
  report(newbie);

  // A prolific collaboration forms between two communities.
  std::printf("\nauthors 555 and 1234 co-author a paper:\n");
  index.InsertEdge(555, 1234);
  report(555);
  report(1234);

  // Persist the maintained index and reload it, as a service would on
  // restart.
  const std::string path = "/tmp/dspc_collaboration.index";
  Status s = index.index().Save(path);
  std::printf("\nsaved index to %s: %s\n", path.c_str(), s.ToString().c_str());
  SpcIndex reloaded;
  s = SpcIndex::Load(path, &reloaded);
  std::printf("reloaded: %s (%zu entries)\n", s.ToString().c_str(),
              reloaded.SizeStats().total_entries);
  const SpcResult check = reloaded.Query(erdos, newbie);
  std::printf("reloaded index answers: Erdos number of the new author = %u\n",
              check.dist);
  std::remove(path.c_str());
  return 0;
}
