// Quickstart: the paper's running example end to end, served through the
// typed SpcService API (DESIGN.md §9).
//
// Builds the Figure 2 graph, answers the Example 2.1 query, then applies
// the paper's two worked updates — inserting edge (v3, v9) (Figure 3) and
// deleting edge (v1, v2) (Figure 6) — showing that queries stay exact
// without any reconstruction. Every write returns a WriteToken; passing
// token.generation as ReadOptions::min_generation guarantees the read
// observes the write (read-your-writes), and invalid requests come back
// as Status errors instead of undefined behavior. The tail of the demo
// shows the operability surface: per-update WriteReports from batch
// writes, deadline-bounded reads, and the ServiceMetrics dump
// (docs/serving-guide.md walks through every one of these snippets).

#include <chrono>
#include <cstdio>
#include <vector>

#include "dspc/api/spc_service.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/update_stream.h"

using namespace dspc;

namespace {

void PrintQuery(const SpcService& service, Vertex s, Vertex t,
                const ReadOptions& read = {}) {
  const StatusOr<QueryResponse> r = service.Query(s, t, read);
  if (!r.ok()) {
    std::printf("  SPC(v%u, v%u) = error: %s\n", s, t,
                r.status().ToString().c_str());
    return;
  }
  if (r->result.count == 0) {
    std::printf("  SPC(v%u, v%u) = disconnected\n", s, t);
  } else {
    std::printf("  SPC(v%u, v%u) = distance %u, %llu shortest path(s)\n", s, t,
                r->result.dist,
                static_cast<unsigned long long>(r->result.count));
  }
}

void PrintLabels(const SpcService& service, Vertex v) {
  const SpcIndex& index = service.engine().index();
  std::printf("  L(v%u) =", v);
  for (const LabelEntry& e : index.Labels(v)) {
    std::printf(" (v%u,%u,%llu)", index.VertexOf(e.hub), e.dist,
                static_cast<unsigned long long>(e.count));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // The 12-vertex example graph G of the paper's Figure 2.
  Graph g(12);
  const Vertex edges[][2] = {{0, 1}, {0, 2}, {0, 3}, {0, 8}, {0, 11}, {1, 2},
                             {1, 5}, {1, 6}, {2, 3}, {2, 5}, {3, 7},  {3, 8},
                             {4, 5}, {4, 7}, {4, 9}, {6, 10}, {9, 10}};
  for (const auto& e : edges) g.AddEdge(e[0], e[1]);

  // Identity ordering reproduces the paper's v0 <= v1 <= ... <= v11, so
  // the label sets match Table 2 exactly.
  DynamicSpcOptions options;
  options.ordering.strategy = OrderingStrategy::kIdentity;
  SpcService service(std::move(g), options);

  std::printf("Built SPC-Index for the paper's example graph (Figure 2).\n");
  PrintLabels(service, 9);

  std::printf("\nExample 2.1: query v4 -> v6\n");
  PrintQuery(service, 4, 6);  // expect distance 3, 2 paths

  std::printf("\nValidation: the service rejects bad requests typed,\n");
  std::printf("instead of crashing on them:\n");
  const auto bad = service.Query(4, 99);
  std::printf("  Query(v4, v99) -> %s\n", bad.status().ToString().c_str());

  std::printf("\nInsert edge (v3, v9) — the paper's Figure 3 update:\n");
  const auto inc = service.InsertEdge(3, 9);
  if (!inc.ok()) {
    std::printf("  insert failed: %s\n", inc.status().ToString().c_str());
    return 1;
  }
  std::printf("  affected hubs: %zu, labels renewed: %zu, inserted: %zu "
              "(write token: generation %llu)\n",
              inc->stats.affected_hubs,
              inc->stats.renew_count + inc->stats.renew_dist,
              inc->stats.inserted,
              static_cast<unsigned long long>(inc->token.generation));
  PrintLabels(service, 9);  // (v0,4,4) has become (v0,2,1)

  // Read-your-writes: the token pins the read at or after the insert.
  ReadOptions after_insert;
  after_insert.min_generation = inc->token.generation;
  PrintQuery(service, 0, 9, after_insert);

  std::printf("\nDelete edge (v1, v2) — the paper's Figure 6 update:\n");
  const auto dec = service.RemoveEdge(1, 2);
  if (!dec.ok()) {
    std::printf("  delete failed: %s\n", dec.status().ToString().c_str());
    return 1;
  }
  std::printf("  |SR| = %zu hubs ran update searches; removed labels: %zu\n",
              dec->stats.affected_hubs, dec->stats.removed);
  ReadOptions after_delete;
  after_delete.min_generation = dec->token.generation;
  PrintQuery(service, 1, 2, after_delete);  // now 2 via v5 / v0
  PrintQuery(service, 4, 6, after_delete);

  std::printf("\nVertex dynamics: add a new user and connect them.\n");
  const AddVertexResponse added = service.AddVertex();
  WriteToken attach_token = added.token;
  for (const Vertex friend_of : {Vertex{4}, Vertex{10}}) {
    const auto attach = service.InsertEdge(added.vertex, friend_of);
    if (!attach.ok()) {
      std::printf("  attach failed: %s\n", attach.status().ToString().c_str());
      return 1;
    }
    attach_token = attach->token;
  }
  ReadOptions attached;
  attached.min_generation = attach_token.generation;
  PrintQuery(service, added.vertex, 0, attached);

  std::printf("\nBatch admission: one WriteReport per update.\n");
  const std::vector<Update> batch = {
      Update::Insert(5, 9),   // a new edge: applies
      Update::Insert(0, 1),   // already present: legal no-op
      Update::Insert(0, 99),  // bad vertex id: rejected, rest unaffected
  };
  const auto applied_batch = service.ApplyUpdates(batch);
  if (!applied_batch.ok()) {
    std::printf("  batch failed: %s\n",
                applied_batch.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < applied_batch->reports.size(); ++i) {
    const WriteReport& r = applied_batch->reports[i];
    const char* outcome =
        r.outcome == WriteReport::Outcome::kApplied    ? "applied"
        : r.outcome == WriteReport::Outcome::kRejected ? "REJECTED"
                                                       : "no-op";
    std::printf("  update %zu: %-8s %s\n", i, outcome, r.reason);
  }
  std::printf("  (%zu applied, %zu no-ops, %zu rejected — generation %llu)\n",
              applied_batch->applied, applied_batch->noops,
              applied_batch->rejected,
              static_cast<unsigned long long>(
                  applied_batch->token.generation));

  std::printf("\nDeadline-bounded read: waits at most 10ms for a writer,\n");
  std::printf("returning DeadlineExceeded instead of blocking:\n");
  ReadOptions deadline_read;
  deadline_read.timeout = std::chrono::milliseconds(10);
  PrintQuery(service, 4, 6, deadline_read);

  std::printf("\nEverything above was also counted by the service:\n");
  std::printf("%s", service.Metrics().ToString().c_str());

  std::printf("\nDone — every answer above was served from the maintained\n");
  std::printf("index; the index was never rebuilt.\n");
  return 0;
}
