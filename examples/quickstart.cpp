// Quickstart: the paper's running example end to end.
//
// Builds the Figure 2 graph, answers the Example 2.1 query, then applies
// the paper's two worked updates — inserting edge (v3, v9) (Figure 3) and
// deleting edge (v1, v2) (Figure 6) — showing that queries stay exact
// without any reconstruction.

#include <cstdio>

#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/graph.h"

using namespace dspc;

namespace {

void PrintQuery(const DynamicSpcIndex& index, Vertex s, Vertex t) {
  const SpcResult r = index.Query(s, t);
  if (r.count == 0) {
    std::printf("  SPC(v%u, v%u) = disconnected\n", s, t);
  } else {
    std::printf("  SPC(v%u, v%u) = distance %u, %llu shortest path(s)\n", s, t,
                r.dist, static_cast<unsigned long long>(r.count));
  }
}

void PrintLabels(const DynamicSpcIndex& index, Vertex v) {
  std::printf("  L(v%u) =", v);
  for (const LabelEntry& e : index.index().Labels(v)) {
    std::printf(" (v%u,%u,%llu)", index.index().VertexOf(e.hub), e.dist,
                static_cast<unsigned long long>(e.count));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // The 12-vertex example graph G of the paper's Figure 2.
  Graph g(12);
  const Vertex edges[][2] = {{0, 1}, {0, 2}, {0, 3}, {0, 8}, {0, 11}, {1, 2},
                             {1, 5}, {1, 6}, {2, 3}, {2, 5}, {3, 7},  {3, 8},
                             {4, 5}, {4, 7}, {4, 9}, {6, 10}, {9, 10}};
  for (const auto& e : edges) g.AddEdge(e[0], e[1]);

  // Identity ordering reproduces the paper's v0 <= v1 <= ... <= v11, so
  // the label sets match Table 2 exactly.
  DynamicSpcOptions options;
  options.ordering.strategy = OrderingStrategy::kIdentity;
  DynamicSpcIndex index(std::move(g), options);

  std::printf("Built SPC-Index for the paper's example graph (Figure 2).\n");
  PrintLabels(index, 9);

  std::printf("\nExample 2.1: query v4 -> v6\n");
  PrintQuery(index, 4, 6);  // expect distance 3, 2 paths

  std::printf("\nInsert edge (v3, v9) — the paper's Figure 3 update:\n");
  const UpdateStats inc = index.InsertEdge(3, 9);
  std::printf("  affected hubs: %zu, labels renewed: %zu, inserted: %zu\n",
              inc.affected_hubs, inc.renew_count + inc.renew_dist,
              inc.inserted);
  PrintLabels(index, 9);  // (v0,4,4) has become (v0,2,1)
  PrintQuery(index, 0, 9);

  std::printf("\nDelete edge (v1, v2) — the paper's Figure 6 update:\n");
  const UpdateStats dec = index.RemoveEdge(1, 2);
  std::printf("  |SR| = %zu hubs ran update searches; removed labels: %zu\n",
              dec.affected_hubs, dec.removed);
  PrintQuery(index, 1, 2);  // now 2 via v5 / v0
  PrintQuery(index, 4, 6);

  std::printf("\nVertex dynamics: add a new user and connect them.\n");
  const Vertex v = index.AddVertex();
  index.InsertEdge(v, 4);
  index.InsertEdge(v, 10);
  PrintQuery(index, v, 0);

  std::printf("\nDone — every answer above was served from the maintained\n");
  std::printf("index; the index was never rebuilt.\n");
  return 0;
}
