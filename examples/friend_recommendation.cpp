// Friend recommendation on a dynamic social network (paper Figure 1).
//
// Users at distance 2 with more shortest paths share more mutual friends.
// The dynamic index keeps recommendations current while friendships are
// added and removed — the scenario that motivates DSPC in the paper's
// introduction.

#include <cstdio>

#include "dspc/apps/recommendation.h"
#include "dspc/common/rng.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/generators.h"

using namespace dspc;

namespace {

void ShowRecommendations(const DynamicSpcIndex& index, Vertex user) {
  const auto recs = RecommendFriends(index, user, 5);
  std::printf("top-%zu recommendations for user %u:\n", recs.size(), user);
  for (const Recommendation& r : recs) {
    std::printf("  user %-6u  mutual friends: %llu\n", r.candidate,
                static_cast<unsigned long long>(r.paths));
  }
}

}  // namespace

int main() {
  // A scale-free social network: preferential attachment mirrors how
  // social graphs grow.
  const size_t kUsers = 2000;
  Graph social = GenerateBarabasiAlbert(kUsers, 3, 2024);
  std::printf("social network: %zu users, %zu friendships\n",
              social.NumVertices(), social.NumEdges());

  DynamicSpcIndex index(std::move(social));
  const Vertex user = 42;

  std::printf("\n=== initial state ===\n");
  ShowRecommendations(index, user);

  // The network evolves: the user makes two new friends, and one of the
  // user's friends unfriends them.
  std::printf("\n=== user %u befriends two suggested users ===\n", user);
  const auto before = RecommendFriends(index, user, 2);
  for (const Recommendation& r : before) {
    index.InsertEdge(user, r.candidate);
    std::printf("  added friendship %u - %u\n", user, r.candidate);
  }
  ShowRecommendations(index, user);

  std::printf("\n=== churn: 50 random friendships added, 10 removed ===\n");
  Rng rng(7);
  size_t added = 0;
  while (added < 50) {
    const auto a = static_cast<Vertex>(rng.NextBounded(kUsers));
    const auto b = static_cast<Vertex>(rng.NextBounded(kUsers));
    if (index.InsertEdge(a, b).applied) ++added;
  }
  size_t removed = 0;
  while (removed < 10) {
    const auto edges = index.graph().Edges();
    const Edge e = edges[rng.NextBounded(edges.size())];
    if (index.RemoveEdge(e.u, e.v).applied) ++removed;
  }
  ShowRecommendations(index, user);

  std::printf(
      "\nEvery ranking above was computed from the live index — %zu\n"
      "friendship changes were absorbed by IncSPC/DecSPC, not rebuilds.\n",
      added + removed + before.size());
  return 0;
}
