// Friend recommendation on a dynamic social network (paper Figure 1).
//
// Users at distance 2 with more shortest paths share more mutual friends.
// The dynamic index keeps recommendations current while friendships are
// added and removed — the scenario that motivates DSPC in the paper's
// introduction. Mutations go through the typed SpcService API: every
// friendship change returns a WriteToken, and the ranking recomputed
// right after a change reads with that token (min_generation) so the user
// is guaranteed to see their own edit reflected — the read-your-writes
// contract a social product actually needs.

#include <cstdio>

#include "dspc/api/spc_service.h"
#include "dspc/apps/recommendation.h"
#include "dspc/common/rng.h"
#include "dspc/graph/generators.h"

using namespace dspc;

namespace {

void ShowRecommendations(const SpcService& service, Vertex user) {
  const auto recs = RecommendFriends(service.engine(), user, 5);
  std::printf("top-%zu recommendations for user %u:\n", recs.size(), user);
  for (const Recommendation& r : recs) {
    std::printf("  user %-6u  mutual friends: %llu\n", r.candidate,
                static_cast<unsigned long long>(r.paths));
  }
}

}  // namespace

int main() {
  // A scale-free social network: preferential attachment mirrors how
  // social graphs grow.
  const size_t kUsers = 2000;
  Graph social = GenerateBarabasiAlbert(kUsers, 3, 2024);
  std::printf("social network: %zu users, %zu friendships\n",
              social.NumVertices(), social.NumEdges());

  SpcService service(std::move(social));
  const Vertex user = 42;

  std::printf("\n=== initial state ===\n");
  ShowRecommendations(service, user);

  // The network evolves: the user makes two new friends. Each insert
  // returns a token; verifying the new friendships with the last token
  // proves the user reads their own writes without any global flush.
  std::printf("\n=== user %u befriends two suggested users ===\n", user);
  const auto before = RecommendFriends(service.engine(), user, 2);
  WriteToken last_write;
  for (const Recommendation& r : before) {
    const auto added = service.InsertEdge(user, r.candidate);
    if (!added.ok()) {
      std::printf("  insert rejected: %s\n",
                  added.status().ToString().c_str());
      continue;
    }
    last_write = added->token;
    std::printf("  added friendship %u - %u (generation %llu)\n", user,
                r.candidate,
                static_cast<unsigned long long>(last_write.generation));
  }
  ReadOptions ryw;
  ryw.min_generation = last_write.generation;
  for (const Recommendation& r : before) {
    const auto check = service.Query(user, r.candidate, ryw);
    std::printf("  verify %u - %u: distance %u (%s)\n", user, r.candidate,
                check.ok() ? check->result.dist : 0,
                check.ok() && check->result.dist == 1
                    ? "own write observed"
                    : "unexpected");
  }
  ShowRecommendations(service, user);

  std::printf("\n=== churn: 50 random friendships added, 10 removed ===\n");
  Rng rng(7);
  size_t added = 0;
  while (added < 50) {
    const auto a = static_cast<Vertex>(rng.NextBounded(kUsers));
    const auto b = static_cast<Vertex>(rng.NextBounded(kUsers));
    const auto resp = service.InsertEdge(a, b);
    if (resp.ok() && resp->stats.applied) ++added;
  }
  size_t removed = 0;
  while (removed < 10) {
    const auto edges = service.engine().graph().Edges();
    const Edge e = edges[rng.NextBounded(edges.size())];
    const auto resp = service.RemoveEdge(e.u, e.v);
    if (resp.ok() && resp->stats.applied) ++removed;
  }
  ShowRecommendations(service, user);

  // The service counted every write outcome above (the duplicate inserts
  // the churn loop retried show up as no-ops, not applied updates).
  std::printf("\n%s", service.Metrics().ToString().c_str());

  std::printf(
      "\nEvery ranking above was computed from the live index — %zu\n"
      "friendship changes were absorbed by IncSPC/DecSPC, not rebuilds.\n",
      added + removed + before.size());
  return 0;
}
