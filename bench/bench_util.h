// Shared infrastructure for the experiment harnesses: the synthetic
// dataset suite standing in for the paper's SNAP/Konect/LAW graphs
// (DESIGN.md §4), scale selection, and table printing helpers.

#ifndef DSPC_BENCH_BENCH_UTIL_H_
#define DSPC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "dspc/core/spc_index.h"
#include "dspc/graph/graph.h"

namespace dspc {
namespace bench {

/// One benchmark dataset: the paper's notation plus the generator recipe.
struct Dataset {
  std::string name;       ///< paper notation (EUA, NTD, ...)
  std::string generator;  ///< human-readable recipe
  Graph graph;
};

/// Scale factor from DSPC_BENCH_SCALE (small=1 default, medium=2,
/// large=4). Multiplies dataset vertex counts.
size_t ScaleFactor();

/// Builds the full 10-graph suite (paper Table 3 stand-ins) at the
/// current scale. If DSPC_BENCH_DATASETS is set (comma-separated names),
/// only those are returned — useful for quick runs.
std::vector<Dataset> MakeDatasets();

/// Builds a reduced suite (first `k` by size) for the heavier harnesses.
std::vector<Dataset> MakeDatasets(size_t k);

/// The number of random insertions / deletions / queries per graph, also
/// scale-aware (paper §4.1.1 uses 1000 insertions, 50-100 deletions,
/// 10000 queries at server scale).
size_t InsertionsPerGraph();
size_t DeletionsPerGraph();
size_t QueriesPerGraph();

/// Builds the SPC-Index of a dataset, or loads it from the bench cache
/// (default /tmp/dspc_bench_cache, override with DSPC_BENCH_CACHE) so the
/// construction cost is paid once across all bench binaries. Returns the
/// index and stores the (cached) HP-SPC construction seconds in
/// *build_seconds — the paper's "L Time" / reconstruction baseline.
SpcIndex BuildOrLoadIndex(const Dataset& dataset, double* build_seconds);

/// Prints a horizontal rule sized for `width` columns of 12 chars.
void PrintRule(size_t width);

/// Formats seconds with adaptive precision.
std::string FormatSeconds(double s);

/// Formats a byte count as MB with two decimals.
std::string FormatMb(size_t bytes);

}  // namespace bench
}  // namespace dspc

#endif  // DSPC_BENCH_BENCH_UTIL_H_
