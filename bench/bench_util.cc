#include "bench_util.h"

#include <cstdlib>
#include <cstring>

#include "dspc/common/stopwatch.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/generators.h"

namespace dspc {
namespace bench {

size_t ScaleFactor() {
  const char* env = std::getenv("DSPC_BENCH_SCALE");
  if (env == nullptr) return 1;
  if (std::strcmp(env, "medium") == 0) return 2;
  if (std::strcmp(env, "large") == 0) return 4;
  return 1;
}

namespace {

/// log2 helper for R-MAT scales.
size_t Log2Ceil(size_t n) {
  size_t s = 0;
  while ((size_t{1} << s) < n) ++s;
  return s;
}

std::vector<Dataset> BuildAll() {
  const size_t f = ScaleFactor();
  std::vector<Dataset> sets;
  // Recipes follow DESIGN.md §4: densities and skew mirror the paper's
  // Table 3 graphs at ~1/40 scale (times the scale factor). All recipes
  // are heavy-tailed (BA / R-MAT) because hub labeling — like the paper's
  // real graphs — relies on a degree hierarchy.
  sets.push_back({"EUA", "BA(n=6k*f, attach=2)",
                  GenerateBarabasiAlbert(6000 * f, 2, 101)});
  sets.push_back({"NTD", "RMAT(n=8k*f, m=3.3n)",
                  GenerateRmat(Log2Ceil(8192 * f), 27000 * f, 102)});
  sets.push_back({"STA", "RMAT(n=8k*f, m=7n)",
                  GenerateRmat(Log2Ceil(8192 * f), 57000 * f, 103)});
  sets.push_back({"WCO", "RMAT(n=4k*f, m=8.3n)",
                  GenerateRmat(Log2Ceil(4096 * f), 34000 * f, 104)});
  sets.push_back({"GOO", "RMAT(n=16k*f, m=5n)",
                  GenerateRmat(Log2Ceil(16384 * f), 80000 * f, 105)});
  sets.push_back({"BKS", "RMAT(n=8k*f, m=9.7n)",
                  GenerateRmat(Log2Ceil(8192 * f), 79000 * f, 106)});
  sets.push_back({"SKI", "BA(n=12k*f, attach=3)",
                  GenerateBarabasiAlbert(12000 * f, 3, 107)});
  sets.push_back({"DBP", "BA(n=16k*f, attach=2)",
                  GenerateBarabasiAlbert(16000 * f, 2, 108)});
  sets.push_back({"WAR", "RMAT(n=8k*f, m=12n)",
                  GenerateRmat(Log2Ceil(8192 * f), 98000 * f, 109)});
  sets.push_back({"IND", "RMAT(n=16k*f, m=10n)",
                  GenerateRmat(Log2Ceil(16384 * f), 160000 * f, 110)});
  return sets;
}

}  // namespace

std::vector<Dataset> MakeDatasets() {
  std::vector<Dataset> all = BuildAll();
  const char* filter = std::getenv("DSPC_BENCH_DATASETS");
  if (filter == nullptr) return all;
  std::vector<Dataset> out;
  const std::string list = filter;
  for (Dataset& d : all) {
    if (list.find(d.name) != std::string::npos) out.push_back(std::move(d));
  }
  return out;
}

std::vector<Dataset> MakeDatasets(size_t k) {
  std::vector<Dataset> all = MakeDatasets();
  if (all.size() > k) all.resize(k);
  return all;
}

size_t InsertionsPerGraph() { return 100 * ScaleFactor(); }
size_t DeletionsPerGraph() { return 10 * ScaleFactor(); }
size_t QueriesPerGraph() { return 1000 * ScaleFactor(); }

namespace {

std::string CacheDir() {
  const char* env = std::getenv("DSPC_BENCH_CACHE");
  std::string dir = env != nullptr ? env : "/tmp/dspc_bench_cache";
  std::system(("mkdir -p " + dir).c_str());
  return dir;
}

}  // namespace

SpcIndex BuildOrLoadIndex(const Dataset& dataset, double* build_seconds) {
  const std::string base = CacheDir() + "/" + dataset.name + "_x" +
                           std::to_string(ScaleFactor());
  const std::string index_path = base + ".index";
  const std::string meta_path = base + ".meta";

  SpcIndex index;
  if (SpcIndex::Load(index_path, &index).ok() &&
      index.NumVertices() == dataset.graph.NumVertices()) {
    if (build_seconds != nullptr) {
      *build_seconds = 0.0;
      if (std::FILE* f = std::fopen(meta_path.c_str(), "r")) {
        if (std::fscanf(f, "%lf", build_seconds) != 1) *build_seconds = 0.0;
        std::fclose(f);
      }
    }
    return index;
  }

  Stopwatch sw;
  index = BuildSpcIndex(dataset.graph);
  const double seconds = sw.ElapsedSeconds();
  if (build_seconds != nullptr) *build_seconds = seconds;
  (void)index.Save(index_path);
  if (std::FILE* f = std::fopen(meta_path.c_str(), "w")) {
    std::fprintf(f, "%.6f\n", seconds);
    std::fclose(f);
  }
  return index;
}

void PrintRule(size_t width) {
  for (size_t i = 0; i < width * 12; ++i) std::putchar('-');
  std::putchar('\n');
}

std::string FormatSeconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

std::string FormatMb(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", static_cast<double>(bytes) / 1e6);
  return buf;
}

}  // namespace bench
}  // namespace dspc
