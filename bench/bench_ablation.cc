// Ablation studies for the design choices DESIGN.md calls out:
//   A. vertex ordering (paper §2.2 / §6): degree vs random ordering —
//      build time, index size, query time;
//   B. isolated-vertex optimization (paper §3.2.3): DecSPC with the fast
//      path on vs off, on a leaf-heavy workload;
//   C. label encoding: packed 64-bit (paper §4.1) vs wide in-memory
//      entries — index bytes.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dspc/common/rng.h"
#include "dspc/common/stopwatch.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"

namespace {

using namespace dspc;
using namespace dspc::bench;

double MeanQuerySeconds(const SpcIndex& index, size_t n, size_t queries) {
  Rng rng(42);
  uint64_t acc = 0;
  Stopwatch sw;
  for (size_t i = 0; i < queries; ++i) {
    const auto s = static_cast<Vertex>(rng.NextBounded(n));
    const auto t = static_cast<Vertex>(rng.NextBounded(n));
    acc += index.Query(s, t).count;
  }
  const double elapsed = sw.ElapsedSeconds();
  volatile uint64_t sink = acc;  // keep the loop observable
  (void)sink;
  return elapsed / static_cast<double>(queries);
}

void OrderingAblation() {
  std::printf("Ablation A: vertex ordering (paper uses degree-based)\n\n");
  std::printf("%-6s %-10s %12s %12s %14s %12s\n", "Graph", "ordering",
              "build", "entries", "size (MB)", "query");
  PrintRule(6);
  for (Dataset& d : MakeDatasets(4)) {
    for (const auto& [label, strategy] :
         {std::pair{"degree", OrderingStrategy::kDegree},
          std::pair{"random", OrderingStrategy::kRandom}}) {
      OrderingOptions options;
      options.strategy = strategy;
      options.seed = 7;
      Stopwatch sw;
      const SpcIndex index = BuildSpcIndex(d.graph, options);
      const double build = sw.ElapsedSeconds();
      const IndexSizeStats stats = index.SizeStats();
      const double query = MeanQuerySeconds(
          index, d.graph.NumVertices(), QueriesPerGraph());
      std::printf("%-6s %-10s %12s %12zu %14s %12s\n", d.name.c_str(), label,
                  FormatSeconds(build).c_str(), stats.total_entries,
                  FormatMb(stats.packed_bytes).c_str(),
                  FormatSeconds(query).c_str());
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected: degree ordering builds faster, yields a smaller index and\n"
      "faster queries — the reason the paper adopts it.\n\n");
}

void IsolatedVertexAblation() {
  std::printf("Ablation B: isolated-vertex optimization (paper 3.2.3)\n\n");
  // Leaf-heavy workload: a BA graph (attach=1 gives a tree-like fringe);
  // delete leaf edges specifically.
  const size_t f = ScaleFactor();
  const Graph g = GenerateBarabasiAlbert(8000 * f, 1, 17);
  std::vector<Edge> leaf_edges;
  for (Vertex v = 0; v < g.NumVertices() && leaf_edges.size() < 200; ++v) {
    if (g.Degree(v) == 1) leaf_edges.push_back(Edge{v, g.Neighbors(v)[0]});
  }
  std::printf("workload: %zu leaf-edge deletions on BA(n=%zu, attach=1)\n",
              leaf_edges.size(), g.NumVertices());

  for (const bool enabled : {true, false}) {
    DynamicSpcOptions options;
    options.dec.enable_isolated_vertex_opt = enabled;
    DynamicSpcIndex dyn(g, options);
    Stopwatch sw;
    size_t fast_path = 0;
    for (const Edge& e : leaf_edges) {
      if (dyn.RemoveEdge(e.u, e.v).used_isolated_vertex_opt) ++fast_path;
    }
    std::printf("  opt %-8s total %10s  (fast path hits: %zu/%zu)\n",
                enabled ? "ON" : "OFF", FormatSeconds(sw.ElapsedSeconds()).c_str(),
                fast_path, leaf_edges.size());
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected: the fast path makes leaf deletions dramatically cheaper\n"
      "(the paper's bottom dots in Figure 7(b)).\n\n");
}

void EncodingAblation() {
  std::printf("Ablation C: label encoding (packed 64-bit vs wide 16-byte)\n\n");
  std::printf("%-6s %12s %14s %14s %10s\n", "Graph", "entries", "packed MB",
              "wide MB", "ratio");
  PrintRule(6);
  for (Dataset& d : MakeDatasets(4)) {
    const SpcIndex index = BuildOrLoadIndex(d, nullptr);
    const IndexSizeStats stats = index.SizeStats();
    std::printf("%-6s %12zu %14s %14s %9.2fx\n", d.name.c_str(),
                stats.total_entries, FormatMb(stats.packed_bytes).c_str(),
                FormatMb(stats.wide_bytes).c_str(),
                static_cast<double>(stats.wide_bytes) /
                    static_cast<double>(stats.packed_bytes));
  }
  std::printf(
      "\nThe paper's 25/10/29-bit packing halves memory at the cost of count\n"
      "saturation above 2^29 (this library keeps counts wide in memory and\n"
      "packs on serialization when lossless).\n");
}

}  // namespace

int main() {
  OrderingAblation();
  IsolatedVertexAblation();
  EncodingAblation();
  return 0;
}
