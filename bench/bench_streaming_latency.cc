// Mixed read/write serving bench: reader threads issue single SPC queries
// continuously while a writer applies update bursts, once per
// RefreshPolicy (kSync vs kBackground) and per snapshot shard count
// (1/4/16). The p50/p99/max query latency shows whether the snapshot
// rebuild lands on the query path (sync: the budget-crossing reader
// stalls for the whole rebuild and everyone else stalls behind the
// writer lock) or on the background worker (queries keep serving the
// previous pinned snapshot and never block on maintenance); the
// update-processing time and the repacked/adopted shard counters show
// what the delta protocol saves — with one shard every refresh copies
// and repacks the whole index, with 16 it touches only dirty ranges
// (DESIGN.md §8). Readers and the writer go through the typed SpcService
// API (DESIGN.md §9) — sync readers with kFresh, background readers with
// kBoundedStaleness — so the numbers price the real serving surface, and
// a final quiesced row compares facade-vs-service single-query
// throughput (the service-layer overhead budget is <= 2%).
//
// A second sweep prices durability (DESIGN.md §11): per-update latency
// through a non-durable service vs a WAL-journaled one under each
// WalSyncPolicy (kNone / kBatch / kEveryWrite), plus the durable-ack
// (group-commit flush) latency for writes that ask for
// WriteOptions::durable. The budget: kNone and kBatch journaling adds
// <= 2% to the plain update path — only kEveryWrite pays an fsync
// inline. Emits a human table and machine-readable JSON
// (BENCH_streaming_latency.json, override with argv[1]).

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "dspc/api/mapped_reader_service.h"
#include "dspc/api/replica_service.h"
#include "dspc/api/spc_service.h"
#include "dspc/common/rng.h"
#include "dspc/common/stats.h"
#include "dspc/common/stopwatch.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"
#include "dspc/persist/env.h"
#include "dspc/persist/replication.h"
#include "dspc/persist/snapshot_arena.h"
#include "dspc/persist/snapshot_publisher.h"
#include "dspc/persist/wal.h"

namespace {

using namespace dspc;

constexpr unsigned kReaders = 2;
constexpr size_t kBurstSize = 25;
constexpr int kBurstGapMs = 30;

struct WindowStats {
  size_t queries = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  // Stall depth buckets. >1ms is mostly scheduler noise on a loaded box;
  // >20ms is a query actually waiting out rebuild/lock chains — the
  // full-rebuild stall the background policy exists to eliminate.
  size_t stalls_1ms = 0;
  size_t stalls_20ms = 0;

  static WindowStats From(const SampleStats& s) {
    WindowStats w;
    w.queries = s.count();
    w.p50_us = s.Percentile(50.0);
    w.p90_us = s.Percentile(90.0);
    w.p99_us = s.Percentile(99.0);
    w.max_us = s.Max();
    for (const double v : s.values()) {
      if (v > 1000.0) ++w.stalls_1ms;
      if (v > 20000.0) ++w.stalls_20ms;
    }
    return w;
  }
};

struct PolicyResult {
  std::string name;
  size_t shards = 0;
  size_t updates = 0;
  double update_seconds = 0.0;
  WindowStats burst;  // sampled while the writer was applying updates
  WindowStats idle;   // sampled between bursts
  size_t rebuilds = 0;
  size_t background_rebuilds = 0;
  size_t retired = 0;
  size_t shards_repacked = 0;
  size_t shards_adopted = 0;
};

PolicyResult ServeUnderBursts(const Graph& graph, const SpcIndex& base,
                              const std::vector<Update>& stream,
                              RefreshPolicy policy, size_t shards,
                              const std::string& name) {
  DynamicSpcOptions options;
  options.snapshot.refresh = policy;
  options.snapshot.rebuild_after_queries = 1;  // rebuild eagerly: worst case
  options.snapshot.shards = shards;
  SpcService service(graph, base, options);    // adopt a copy of the index
  const DynamicSpcIndex& dyn = service.engine();
  dyn.WaitForFreshSnapshot();                  // warm the serving path

  // The service read mirrors each policy's historical serving contract:
  // sync readers demand freshness (they ride the snapshot when current,
  // the live index otherwise); background readers accept any bounded
  // staleness, never blocking on maintenance.
  ReadOptions read;
  if (policy == RefreshPolicy::kBackground) {
    read.consistency = Consistency::kBoundedStaleness;
    read.max_lag = ~0ull;  // any published snapshot qualifies
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> in_burst{false};
  // [reader][0]: burst-window samples, [reader][1]: idle samples.
  std::vector<std::array<SampleStats, 2>> per_reader(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  const size_t n = graph.NumVertices();
  for (unsigned r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + r);
      uint64_t sink = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto s = static_cast<Vertex>(rng.NextBounded(n));
        const auto t = static_cast<Vertex>(rng.NextBounded(n));
        const bool burst = in_burst.load(std::memory_order_acquire);
        Stopwatch q;
        const auto res = service.Query(s, t, read);
        per_reader[r][burst ? 0 : 1].Add(q.ElapsedMicros());
        sink += res.ok() ? res->result.dist : 0;
      }
      if (sink == 0xDEADBEEF) std::printf("impossible\n");  // keep sink live
    });
  }

  // Writer: bursts of updates (spaced like an arriving stream so readers
  // interleave) with serving gaps between bursts.
  Stopwatch writer_watch;
  size_t applied = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    in_burst.store(true, std::memory_order_release);
    const auto resp = service.ApplyUpdates({&stream[i], 1});
    applied += resp.ok() && resp->stats.applied ? 1 : 0;
    if ((i + 1) % kBurstSize == 0) {
      in_burst.store(false, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(kBurstGapMs));
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  }
  in_burst.store(false, std::memory_order_release);
  const double update_seconds = writer_watch.ElapsedSeconds();
  // Let readers drain the post-burst rebuild before sampling ends.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  SampleStats burst_all;
  SampleStats idle_all;
  for (const auto& s : per_reader) {
    for (const double v : s[0].values()) burst_all.Add(v);
    for (const double v : s[1].values()) idle_all.Add(v);
  }

  PolicyResult out;
  out.name = name;
  out.shards = shards;
  out.updates = applied;
  out.update_seconds = update_seconds;
  out.burst = WindowStats::From(burst_all);
  out.idle = WindowStats::From(idle_all);
  out.rebuilds = dyn.SnapshotRebuilds();
  out.background_rebuilds = dyn.snapshots()->BackgroundRebuilds();
  out.retired = dyn.snapshots()->RetiredSnapshots();
  out.shards_repacked = dyn.snapshots()->ShardsRepacked();
  out.shards_adopted = dyn.snapshots()->ShardsAdopted();
  return out;
}

// --- durability sweep (DESIGN.md §11) ---------------------------------------

struct DurabilityRow {
  std::string name;
  size_t updates = 0;
  double p50_us = 0.0;   // plain (non-durable-flagged) update latency
  double p99_us = 0.0;
  double max_us = 0.0;
  size_t durable_acks = 0;  // writes issued with WriteOptions::durable
  double durable_p50_us = 0.0;  // durable-ack (flush) latency
  double durable_p99_us = 0.0;
  uint64_t wal_syncs = 0;
  uint64_t wal_appended_bytes = 0;
  double overhead_pct = 0.0;  // plain-update p50 vs the baseline row
};

/// Empties (or creates) a scratch WAL directory for one durable row.
std::string FreshWalDir(const std::string& tag) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = "/tmp/dspc_bench_wal_" + tag;
  (void)fs->CreateDir(dir);
  if (auto names = fs->ListDir(dir); names.ok()) {
    for (const std::string& name : *names) {
      (void)fs->RemoveFile(dir + "/" + name);
    }
  }
  return dir;
}

/// Drives `stream` through a non-durable baseline and one durable
/// service per WAL sync policy, INTERLEAVED per update (B N B E B N B E
/// ... for every input) so machine-load drift taxes all rows equally —
/// the per-row p50 deltas then isolate the journaling cost instead of
/// whichever row drew the quiet scheduling window. All four services
/// start from the same graph and apply the identical update sequence,
/// so every row does the same engine work. Every 8th write additionally
/// demands WriteOptions::durable so each row also prices the
/// durable-ack (flush) latency under its policy.
std::vector<DurabilityRow> SweepSyncPolicies(const Graph& graph,
                                             const SpcIndex& base,
                                             const std::vector<Update>& stream) {
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kManual;  // pure update path

  SpcService baseline(graph, base, options);
  const std::vector<std::pair<std::string, WalSyncPolicy>> policies = {
      {"wal_none", WalSyncPolicy::kNone},
      {"wal_batch", WalSyncPolicy::kBatch},
      {"wal_every", WalSyncPolicy::kEveryWrite},
  };
  std::vector<SpcService*> services = {&baseline};
  std::vector<std::unique_ptr<SpcService>> durables;
  for (const auto& [name, sync] : policies) {
    DurabilityOptions durability;
    durability.dir = FreshWalDir(name);
    durability.sync = sync;
    durability.checkpoint_wal_bytes = 0;  // no background checkpoints
    durability.checkpoint_wal_records = 0;  // mid-measurement
    auto service = SpcService::Open(Graph(graph), durability, options);
    if (!service.ok()) {
      std::fprintf(stderr, "durability row %s: open failed: %s\n",
                   name.c_str(), service.status().ToString().c_str());
      return {};
    }
    durables.push_back(std::move(*service));
    services.push_back(durables.back().get());
  }

  std::vector<SampleStats> plain(services.size());
  std::vector<SampleStats> durable(services.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    const bool want_durable = i % 8 == 7;
    for (size_t s = 0; s < services.size(); ++s) {
      WriteOptions write;
      write.durable = want_durable && services[s]->Durable();
      Stopwatch w;
      const auto resp = services[s]->ApplyUpdates({&stream[i], 1}, write);
      const double us = w.ElapsedMicros();
      if (!resp.ok()) {
        std::fprintf(stderr, "durability row %zu: update failed: %s\n", s,
                     resp.status().ToString().c_str());
        return {};
      }
      (write.durable ? durable[s] : plain[s]).Add(us);
    }
  }

  std::vector<DurabilityRow> rows;
  for (size_t s = 0; s < services.size(); ++s) {
    DurabilityRow row;
    row.name = s == 0 ? "no_wal" : policies[s - 1].first;
    row.updates = stream.size();
    row.p50_us = plain[s].Percentile(50.0);
    row.p99_us = plain[s].Percentile(99.0);
    row.max_us = plain[s].Max();
    row.durable_acks = durable[s].count();
    row.durable_p50_us = durable[s].Percentile(50.0);
    row.durable_p99_us = durable[s].Percentile(99.0);
    const MetricsSnapshot m = services[s]->Metrics();
    row.wal_syncs = m.wal_syncs;
    row.wal_appended_bytes = m.wal_appended_bytes;
    rows.push_back(row);
  }
  return rows;
}

// --- replication sweep (DESIGN.md §13) --------------------------------------

struct ReplicationRow {
  size_t writes = 0;
  double ack_p50_us = 0.0;  // durable-ack latency on the primary
  double lag_p50_us = 0.0;  // durable ack -> visible on the replica
  double lag_p99_us = 0.0;
  double lag_max_us = 0.0;
  uint64_t checkpoints_shipped = 0;
  uint64_t bytes_shipped = 0;
  uint64_t ops_applied = 0;
  bool ok = false;
};

/// Prices the hot-standby pipeline: a kEveryWrite primary with a
/// free-running WalShipper into an in-process store, a background-tailing
/// ReplicaService on the other end. Each durable write is timed twice —
/// the primary's ack, then the extra wall time until the replica's
/// applied generation covers the acked token (ship + fetch + replay).
/// That second number is the replica apply lag a kBoundedStaleness
/// reader actually experiences.
ReplicationRow MeasureReplicaApplyLag(const Graph& graph,
                                      const std::vector<Update>& stream) {
  ReplicationRow row;
  DurabilityOptions durability;
  durability.dir = FreshWalDir("repl");
  durability.sync = WalSyncPolicy::kEveryWrite;
  durability.checkpoint_wal_bytes = 0;
  durability.checkpoint_wal_records = 0;
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kManual;  // pure update path
  auto primary = SpcService::Open(Graph(graph), durability, options);
  if (!primary.ok()) {
    std::fprintf(stderr, "replication row: open failed: %s\n",
                 primary.status().ToString().c_str());
    return row;
  }
  InProcessTransport transport;
  WalShipper::Options ship;
  ship.poll_interval = std::chrono::microseconds(100);
  auto shipper = (*primary)->NewShipper(&transport, ship);
  if (!shipper.ok()) {
    std::fprintf(stderr, "replication row: shipper failed: %s\n",
                 shipper.status().ToString().c_str());
    return row;
  }
  (*shipper)->Start();
  ReplicaOptions replica_options;
  replica_options.transport = &transport;
  replica_options.poll_interval = std::chrono::microseconds(100);
  replica_options.bootstrap_timeout = std::chrono::seconds(60);
  auto replica = ReplicaService::Open(replica_options);
  if (!replica.ok()) {
    std::fprintf(stderr, "replication row: replica open failed: %s\n",
                 replica.status().ToString().c_str());
    (*shipper)->Stop();
    return row;
  }

  SampleStats ack;
  SampleStats lag;
  WriteOptions write;
  write.durable = true;
  for (const Update& update : stream) {
    Stopwatch aw;
    const auto resp = (*primary)->ApplyUpdates({&update, 1}, write);
    if (!resp.ok()) {
      std::fprintf(stderr, "replication row: update failed: %s\n",
                   resp.status().ToString().c_str());
      (*replica)->Stop();
      (*shipper)->Stop();
      return row;
    }
    ack.Add(aw.ElapsedMicros());
    const uint64_t target = resp->token.generation;
    Stopwatch lw;
    while ((*replica)->AppliedGeneration() < target &&
           lw.ElapsedSeconds() < 10.0) {
      std::this_thread::yield();
    }
    lag.Add(lw.ElapsedMicros());
  }
  (*replica)->Stop();
  (*shipper)->Stop();

  row.writes = stream.size();
  row.ack_p50_us = ack.Percentile(50.0);
  row.lag_p50_us = lag.Percentile(50.0);
  row.lag_p99_us = lag.Percentile(99.0);
  row.lag_max_us = lag.Max();
  const WalShipper::Stats stats = (*shipper)->GetStats();
  row.checkpoints_shipped = stats.checkpoints_shipped;
  row.bytes_shipped = stats.bytes_shipped;
  row.ops_applied = (*replica)->Metrics().repl_ops_applied;
  row.ok = (*replica)->AppliedGeneration() == (*primary)->Generation() &&
           (*replica)->Health().ok();
  return row;
}

// --- multi-process publish adoption (DESIGN.md §14) --------------------------

struct AdoptionRow {
  size_t publishes = 0;
  double publish_p50_us = 0.0;  // writer: snapshot + arena write + rename
  double lag_p50_us = 0.0;      // publish visible -> reader serving it
  double lag_p99_us = 0.0;
  double lag_max_us = 0.0;
  uint64_t arena_bytes = 0;     // size of the last published arena
  bool ok = false;
};

/// Prices the mmap serving tier's freshness gap: a writer publishing
/// generation-numbered arenas through SnapshotPublisher, a
/// MappedReaderService adopting each by remap. Each round applies a
/// burst of updates, times PublishSnapshot (the writer-side cost:
/// freeze + flatten + tmp/fsync/rename), then times how long until the
/// reader *serves* the new generation (PUBSTATE read + pin + mmap +
/// validation + swap) — the publish-to-reader-visible adoption lag a
/// kSnapshot reader process experiences.
AdoptionRow MeasurePublishAdoptionLag(const Graph& graph, const SpcIndex& base,
                                      const std::vector<Update>& stream) {
  AdoptionRow row;
  const std::string dir = FreshWalDir("publish");
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kManual;  // pure update path
  SpcService service(graph, base, options);
  auto pub = SnapshotPublisher::Open(dir);
  if (!pub.ok()) {
    std::fprintf(stderr, "adoption row: publisher open failed: %s\n",
                 pub.status().ToString().c_str());
    return row;
  }
  if (Status st = service.PublishSnapshot(pub->get()); !st.ok()) {
    std::fprintf(stderr, "adoption row: first publish failed: %s\n",
                 st.ToString().c_str());
    return row;
  }
  auto reader = MappedReaderService::Open(dir);
  if (!reader.ok()) {
    std::fprintf(stderr, "adoption row: reader open failed: %s\n",
                 reader.status().ToString().c_str());
    return row;
  }

  SampleStats publish;
  SampleStats lag;
  constexpr size_t kUpdatesPerPublish = 10;
  for (size_t i = 0; i + kUpdatesPerPublish <= stream.size();
       i += kUpdatesPerPublish) {
    if (!service.ApplyUpdates({&stream[i], kUpdatesPerPublish}).ok()) {
      std::fprintf(stderr, "adoption row: updates failed\n");
      return row;
    }
    Stopwatch pw;
    if (Status st = service.PublishSnapshot(pub->get()); !st.ok()) {
      std::fprintf(stderr, "adoption row: publish failed: %s\n",
                   st.ToString().c_str());
      return row;
    }
    publish.Add(pw.ElapsedMicros());
    const uint64_t target = (*pub)->CurrentGeneration();
    Stopwatch lw;
    while ((*reader)->Generation() < target && lw.ElapsedSeconds() < 10.0) {
      (void)(*reader)->Refresh();
    }
    lag.Add(lw.ElapsedMicros());
  }

  row.publishes = publish.count();
  row.publish_p50_us = publish.Percentile(50.0);
  row.lag_p50_us = lag.Percentile(50.0);
  row.lag_p99_us = lag.Percentile(99.0);
  row.lag_max_us = lag.Max();
  row.ok = (*reader)->Generation() == service.Generation();
  if (auto state = ReadPubState(FileSystem::Default(), dir); state.ok()) {
    if (auto arena = MappedArena::Map(FileSystem::Default(),
                                      dir + "/" + state->file_name);
        arena.ok()) {
      row.arena_bytes = arena->file_bytes();
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_streaming_latency.json";
  const size_t f = bench::ScaleFactor();

  const size_t scale = 12;
  const size_t edges = 34000 * f;
  const Graph graph = GenerateRmat(scale, edges, 5);
  std::printf("graph: RMAT scale=%zu  n=%zu  m=%zu\n", scale,
              graph.NumVertices(), graph.NumEdges());

  Stopwatch build_watch;
  const SpcIndex base = BuildSpcIndex(graph);
  std::printf("index: %zu entries, built in %.2fs\n",
              base.SizeStats().total_entries, build_watch.ElapsedSeconds());

  // 120 insertions + 30 deletions in bursts of 25.
  const std::vector<Update> stream = MakeHybridStream(graph, 120, 30, 9);

  // The policy sweep: sync and background at the library's default shard
  // count, plus the background shard sweep isolating the delta rebuild's
  // contribution (1 shard = the monolithic PR-2 behavior).
  const size_t kDefaultShards = SnapshotOptions::kDefaultShards;
  const PolicyResult sync = ServeUnderBursts(
      graph, base, stream, RefreshPolicy::kSync, kDefaultShards, "sync");
  const PolicyResult bg = ServeUnderBursts(graph, base, stream,
                                           RefreshPolicy::kBackground,
                                           kDefaultShards, "background");
  const PolicyResult bg_s1 = ServeUnderBursts(graph, base, stream,
                                              RefreshPolicy::kBackground, 1,
                                              "background_s1");
  const PolicyResult bg_s4 = ServeUnderBursts(graph, base, stream,
                                              RefreshPolicy::kBackground, 4,
                                              "background_s4");
  const std::vector<PolicyResult> results = {sync, bg_s1, bg_s4, bg};

  std::printf("\n%-14s %-7s %9s %9s %9s %10s %7s %7s\n", "policy", "window",
              "queries", "p50 us", "p99 us", "max us", ">1ms", ">20ms");
  bench::PrintRule(7);
  for (const PolicyResult& r : results) {
    std::printf("%-14s %-7s %9zu %9.1f %9.1f %10.1f %7zu %7zu\n",
                r.name.c_str(), "burst", r.burst.queries, r.burst.p50_us,
                r.burst.p99_us, r.burst.max_us, r.burst.stalls_1ms,
                r.burst.stalls_20ms);
    std::printf("%-14s %-7s %9zu %9.1f %9.1f %10.1f %7zu %7zu  "
                "(%zu rebuilds, %zu shards repacked, %zu adopted, "
                "updates %.2fs)\n",
                r.name.c_str(), "idle", r.idle.queries, r.idle.p50_us,
                r.idle.p99_us, r.idle.max_us, r.idle.stalls_1ms,
                r.idle.stalls_20ms, r.rebuilds, r.shards_repacked,
                r.shards_adopted, r.update_seconds);
  }
  const double worst_ratio =
      bg.burst.max_us > 0.0 ? sync.burst.max_us / bg.burst.max_us : 0.0;
  std::printf(
      "\nworst in-burst query stall: sync %.1fms vs background %.1fms "
      "(%.1fx);\nfull-rebuild stalls (>20ms): sync %zu vs background %zu "
      "(background rebuilds: %zu, snapshots retired: %zu)\n",
      sync.burst.max_us / 1000.0, bg.burst.max_us / 1000.0, worst_ratio,
      sync.burst.stalls_20ms + sync.idle.stalls_20ms,
      bg.burst.stalls_20ms + bg.idle.stalls_20ms, bg.background_rebuilds,
      bg.retired);

  // Service-layer overhead row: the same quiesced single-query loop
  // through the raw facade and through SpcService (validation +
  // consistency routing). The serving-path budget is <= 2%.
  double facade_qps = 0.0;
  double service_qps = 0.0;
  std::string overhead_metrics_dump;  // §10 counter dump of the probe run
  {
    DynamicSpcOptions options;
    options.snapshot.refresh = RefreshPolicy::kBackground;
    SpcService service(graph, base, options);
    service.engine().WaitForFreshSnapshot();
    const size_t probes = 600000 * f;
    Rng rng(31);
    std::vector<std::pair<Vertex, Vertex>> probe_pairs(probes);
    for (auto& p : probe_pairs) {
      p.first = static_cast<Vertex>(rng.NextBounded(graph.NumVertices()));
      p.second = static_cast<Vertex>(rng.NextBounded(graph.NumVertices()));
    }
    // Interleave the reps (F S F S ...) so machine-load drift between the
    // two loops cannot masquerade as API overhead, and take the median
    // per driver — the best-of is whichever loop got a lucky scheduling
    // window, the median is the serving rate both actually sustain.
    uint64_t sink = 0;
    SampleStats facade_reps;
    SampleStats service_reps;
    const ReadOptions fresh_read;  // kFresh defaults, hoisted
    for (int rep = 0; rep < 9; ++rep) {
      {
        Stopwatch w;
        for (const auto& [s, t] : probe_pairs) {
          sink += service.engine().Query(s, t).dist;
        }
        facade_reps.Add(static_cast<double>(probes) / w.ElapsedSeconds());
      }
      {
        Stopwatch w;
        for (const auto& [s, t] : probe_pairs) {
          const auto resp = service.Query(s, t, fresh_read);
          sink += resp.ok() ? resp->result.dist : 0;
        }
        service_reps.Add(static_cast<double>(probes) / w.ElapsedSeconds());
      }
    }
    facade_qps = facade_reps.Median();
    service_qps = service_reps.Median();
    overhead_metrics_dump = service.Metrics().ToString();
    if (sink == 0xDEADBEEF) std::printf("impossible\n");
  }
  const double service_overhead_pct =
      facade_qps > 0.0 ? (facade_qps - service_qps) / facade_qps * 100.0
                       : 0.0;
  std::printf(
      "service overhead: facade %.0f q/s vs SpcService %.0f q/s "
      "(%.2f%% overhead)\n",
      facade_qps, service_qps, service_overhead_pct);
  std::printf("\n%s", overhead_metrics_dump.c_str());

  // Durability sweep: the same single-update drive through a non-durable
  // service and through SpcService::Open under each WAL sync policy. The
  // baseline adopts the prebuilt index; durable rows bootstrap their own
  // (identical) index, so only the update path differs.
  const std::vector<Update> wal_stream = MakeHybridStream(graph, 600, 150, 17);
  std::vector<DurabilityRow> wal_rows = SweepSyncPolicies(graph, base,
                                                          wal_stream);
  if (wal_rows.empty()) return 1;
  const double base_p50 = wal_rows[0].p50_us;
  for (DurabilityRow& r : wal_rows) {
    r.overhead_pct =
        base_p50 > 0.0 ? (r.p50_us - base_p50) / base_p50 * 100.0 : 0.0;
  }

  std::printf("\n%-10s %8s %9s %9s %10s %9s %11s %11s %7s %10s\n", "wal",
              "updates", "p50 us", "p99 us", "max us", "ovh %", "dur p50 us",
              "dur p99 us", "syncs", "wal bytes");
  bench::PrintRule(10);
  for (const DurabilityRow& r : wal_rows) {
    std::printf("%-10s %8zu %9.1f %9.1f %10.1f %9.2f %11.1f %11.1f %7llu "
                "%10llu\n",
                r.name.c_str(), r.updates, r.p50_us, r.p99_us, r.max_us,
                r.overhead_pct, r.durable_p50_us, r.durable_p99_us,
                static_cast<unsigned long long>(r.wal_syncs),
                static_cast<unsigned long long>(r.wal_appended_bytes));
  }
  std::printf(
      "journaling overhead on the plain update path (p50): "
      "kNone %+.2f%%, kBatch %+.2f%%, kEveryWrite %+.2f%% "
      "(budget <= 2%% for kNone/kBatch; kEveryWrite pays its inline fsync)\n",
      wal_rows[1].overhead_pct, wal_rows[2].overhead_pct,
      wal_rows[3].overhead_pct);

  // Replication row: what a hot standby adds on top of kEveryWrite —
  // the durable ack is unchanged (shipping is off the commit path), and
  // the apply lag is the freshness gap a replica reader sees.
  const std::vector<Update> repl_stream = MakeHybridStream(graph, 240, 60, 23);
  const ReplicationRow repl = MeasureReplicaApplyLag(graph, repl_stream);
  std::printf("\n%-12s %7s %11s %11s %11s %11s %7s %10s\n", "replication",
              "writes", "ack p50 us", "lag p50 us", "lag p99 us",
              "lag max us", "ckpts", "bytes");
  bench::PrintRule(8);
  std::printf("%-12s %7zu %11.1f %11.1f %11.1f %11.1f %7llu %10llu  (%s, "
              "%llu ops applied)\n",
              "hot_standby", repl.writes, repl.ack_p50_us, repl.lag_p50_us,
              repl.lag_p99_us, repl.lag_max_us,
              static_cast<unsigned long long>(repl.checkpoints_shipped),
              static_cast<unsigned long long>(repl.bytes_shipped),
              repl.ok ? "converged" : "NOT CONVERGED",
              static_cast<unsigned long long>(repl.ops_applied));

  // Multi-process serving row: publish-to-reader-visible adoption lag
  // through the shared-directory arena protocol (DESIGN.md §14).
  const std::vector<Update> pub_stream = MakeHybridStream(graph, 240, 60, 29);
  const AdoptionRow adoption = MeasurePublishAdoptionLag(graph, base,
                                                         pub_stream);
  std::printf("\n%-12s %9s %11s %11s %11s %11s %11s\n", "mmap serving",
              "publishes", "pub p50 us", "lag p50 us", "lag p99 us",
              "lag max us", "arena B");
  bench::PrintRule(7);
  std::printf("%-12s %9zu %11.1f %11.1f %11.1f %11.1f %11llu  (%s)\n",
              "publish", adoption.publishes, adoption.publish_p50_us,
              adoption.lag_p50_us, adoption.lag_p99_us, adoption.lag_max_us,
              static_cast<unsigned long long>(adoption.arena_bytes),
              adoption.ok ? "converged" : "NOT CONVERGED");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"streaming_latency\",\n"
               "  \"graph\": {\"generator\": \"rmat\", \"scale\": %zu, "
               "\"vertices\": %zu, \"edges\": %zu},\n"
               "  \"readers\": %u,\n"
               "  \"burst_size\": %zu,\n"
               "  \"burst_gap_ms\": %d,\n"
               "  \"policies\": [\n",
               scale, graph.NumVertices(), graph.NumEdges(), kReaders,
               kBurstSize, kBurstGapMs);
  bool first = true;
  for (const PolicyResult& r : results) {
    std::fprintf(
        json,
        "    %s{\"policy\": \"%s\", \"shards\": %zu, \"updates\": %zu, "
        "\"update_seconds\": %.4f,\n"
        "     \"burst\": {\"queries\": %zu, \"p50_us\": %.2f, "
        "\"p90_us\": %.2f, \"p99_us\": %.2f, \"max_us\": %.2f, "
        "\"stalls_over_1ms\": %zu, \"stalls_over_20ms\": %zu},\n"
        "     \"idle\": {\"queries\": %zu, \"p50_us\": %.2f, "
        "\"p90_us\": %.2f, \"p99_us\": %.2f, \"max_us\": %.2f, "
        "\"stalls_over_1ms\": %zu, \"stalls_over_20ms\": %zu},\n"
        "     \"rebuilds\": %zu, \"background_rebuilds\": %zu, "
        "\"retired_snapshots\": %zu, \"shards_repacked\": %zu, "
        "\"shards_adopted\": %zu}\n",
        first ? "" : ",", r.name.c_str(), r.shards, r.updates,
        r.update_seconds, r.burst.queries, r.burst.p50_us, r.burst.p90_us,
        r.burst.p99_us, r.burst.max_us, r.burst.stalls_1ms,
        r.burst.stalls_20ms, r.idle.queries, r.idle.p50_us, r.idle.p90_us,
        r.idle.p99_us, r.idle.max_us, r.idle.stalls_1ms, r.idle.stalls_20ms,
        r.rebuilds, r.background_rebuilds, r.retired, r.shards_repacked,
        r.shards_adopted);
    first = false;
  }
  std::fprintf(json, "  ],\n  \"durability\": [\n");
  first = true;
  for (const DurabilityRow& r : wal_rows) {
    std::fprintf(
        json,
        "    %s{\"policy\": \"%s\", \"updates\": %zu, \"p50_us\": %.2f, "
        "\"p99_us\": %.2f, \"max_us\": %.2f, \"overhead_pct\": %.3f,\n"
        "     \"durable_acks\": %zu, \"durable_p50_us\": %.2f, "
        "\"durable_p99_us\": %.2f, \"wal_syncs\": %llu, "
        "\"wal_appended_bytes\": %llu}\n",
        first ? "" : ",", r.name.c_str(), r.updates, r.p50_us, r.p99_us,
        r.max_us, r.overhead_pct, r.durable_acks, r.durable_p50_us,
        r.durable_p99_us, static_cast<unsigned long long>(r.wal_syncs),
        static_cast<unsigned long long>(r.wal_appended_bytes));
    first = false;
  }
  std::fprintf(json,
               "  ],\n"
               "  \"replication\": {\"writes\": %zu, \"ack_p50_us\": %.2f, "
               "\"apply_lag_p50_us\": %.2f, \"apply_lag_p99_us\": %.2f, "
               "\"apply_lag_max_us\": %.2f,\n"
               "    \"checkpoints_shipped\": %llu, \"bytes_shipped\": %llu, "
               "\"ops_applied\": %llu, \"converged\": %s},\n",
               repl.writes, repl.ack_p50_us, repl.lag_p50_us, repl.lag_p99_us,
               repl.lag_max_us,
               static_cast<unsigned long long>(repl.checkpoints_shipped),
               static_cast<unsigned long long>(repl.bytes_shipped),
               static_cast<unsigned long long>(repl.ops_applied),
               repl.ok ? "true" : "false");
  std::fprintf(json,
               "  \"publish_adoption\": {\"publishes\": %zu, "
               "\"publish_p50_us\": %.2f, \"adoption_lag_p50_us\": %.2f, "
               "\"adoption_lag_p99_us\": %.2f, \"adoption_lag_max_us\": %.2f, "
               "\"arena_bytes\": %llu, \"converged\": %s},\n",
               adoption.publishes, adoption.publish_p50_us,
               adoption.lag_p50_us, adoption.lag_p99_us, adoption.lag_max_us,
               static_cast<unsigned long long>(adoption.arena_bytes),
               adoption.ok ? "true" : "false");
  std::fprintf(json,
               "  \"sync_over_background_worst_burst_stall\": %.3f,\n"
               "  \"default_shards\": %zu,\n"
               "  \"background_s1_over_default_update_seconds\": %.3f,\n"
               "  \"facade_single_qps\": %.0f,\n"
               "  \"service_single_qps\": %.0f,\n"
               "  \"service_overhead_pct\": %.3f\n"
               "}\n",
               worst_ratio, kDefaultShards,
               bg.update_seconds > 0.0
                   ? bg_s1.update_seconds / bg.update_seconds
                   : 0.0,
               facade_qps, service_qps, service_overhead_pct);
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
