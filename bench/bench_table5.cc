// Table 5: Average size of SR_a, SR_b, R_a, R_b over the decremental
// updates. By the paper's convention SR_a holds the larger SR side of
// each deletion. The shape to reproduce: |SR| = |SR_a|+|SR_b| is much
// smaller than |R| = |R_a|+|R_b| on most graphs — DecSPC runs BFSs only
// from the small SR set.

#include <cstdio>

#include "bench_util.h"
#include "dspc/common/rng.h"
#include "dspc/common/stopwatch.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/graph/update_stream.h"

int main() {
  using namespace dspc;
  using namespace dspc::bench;

  const size_t deletions = DeletionsPerGraph();
  std::printf("Table 5: Average size of SR_a, SR_b, R_a, R_b (%zu deletions)\n\n",
              deletions);
  std::printf("%-6s %12s %12s %12s %12s %10s %10s %10s\n", "Graph", "SR_a",
              "SR_b", "R_a", "R_b", "|SR|/|R|", "Q lgcy", "Q flat");
  PrintRule(9);
  const size_t queries = QueriesPerGraph();

  for (Dataset& d : MakeDatasets()) {
    SpcIndex index = BuildOrLoadIndex(d, nullptr);
    DynamicSpcIndex dyn(d.graph, std::move(index));

    const std::vector<Edge> deletes = SampleEdges(dyn.graph(), deletions, 301);
    double sr_a = 0;
    double sr_b = 0;
    double r_a = 0;
    double r_b = 0;
    size_t applied = 0;
    for (const Edge& e : deletes) {
      const UpdateStats stats = dyn.RemoveEdge(e.u, e.v);
      if (!stats.applied || stats.used_isolated_vertex_opt) continue;
      ++applied;
      sr_a += static_cast<double>(stats.sr_a);
      sr_b += static_cast<double>(stats.sr_b);
      r_a += static_cast<double>(stats.r_a);
      r_b += static_cast<double>(stats.r_b);
    }
    if (applied > 0) {
      sr_a /= applied;
      sr_b /= applied;
      r_a /= applied;
      r_b /= applied;
    }
    const double sr = sr_a + sr_b;
    const double r = r_a + r_b;

    // Post-deletion query check: the maintained index answers through the
    // legacy merge-scan and the rebuilt flat snapshot at matching results
    // but different speeds.
    Rng rng(401);
    const size_t n = dyn.graph().NumVertices();
    std::vector<std::pair<Vertex, Vertex>> pairs(queries);
    for (auto& p : pairs) {
      p.first = static_cast<Vertex>(rng.NextBounded(n));
      p.second = static_cast<Vertex>(rng.NextBounded(n));
    }
    Stopwatch legacy_watch;
    for (const auto& [s, t] : pairs) dyn.index().Query(s, t);
    const double legacy_avg = legacy_watch.ElapsedSeconds() / queries;
    const auto flat = dyn.FlatSnapshot();
    Stopwatch flat_watch;
    for (const auto& [s, t] : pairs) flat->Query(s, t);
    const double flat_avg = flat_watch.ElapsedSeconds() / queries;

    std::printf("%-6s %12.1f %12.1f %12.1f %12.1f %9.3f %10s %10s\n",
                d.name.c_str(), sr_a, sr_b, r_a, r_b, r > 0 ? sr / r : 0.0,
                FormatSeconds(legacy_avg).c_str(),
                FormatSeconds(flat_avg).c_str());
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check vs paper: |SR| well below |R| — few hubs drive the\n"
      "decremental BFSs relative to the receiver-only set. Q lgcy/Q flat:\n"
      "per-query time on the mutable index vs the flat snapshot.\n");
  return 0;
}
