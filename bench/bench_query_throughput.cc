// Query-throughput shoot-out: legacy SpcIndex::Query vs the FlatSpcIndex
// packed arena, its batched driver, and the thread-parallel batch driver —
// all on the same graph and the same query set — plus a shard-count sweep
// (1/4/16 vertex-range shards) quantifying what the sharded serving
// layout costs the query path, and facade-vs-SpcService rows pricing the
// typed serving API (validation + consistency routing, DESIGN.md §9)
// against direct facade calls. Two performance-layer sweeps ride along
// (DESIGN.md §15): a merge-kernel tier sweep (scalar / SWAR / AVX2, each
// forced explicitly, on full queries and on a synthetic tail-only
// intersection) and a hot-pair-cache row measured under Zipf-skewed
// pairs regardless of --query-dist, so the checked-in JSON always
// carries the cache hit rate skewed traffic would see. Emits a human
// table on stdout and machine-readable JSON (BENCH_query_throughput.json,
// override with argv[1]) for the repo's benchmark trajectory.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "dspc/api/spc_service.h"
#include "dspc/common/label_codec.h"
#include "dspc/common/rng.h"
#include "dspc/common/stopwatch.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/hp_spc.h"
#include "dspc/core/merge_kernel.h"
#include "dspc/core/parallel_build.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/zipf_sampler.h"

namespace {

using namespace dspc;

/// Best-of-`reps` queries/second for one driver.
template <typename Fn>
double MeasureQps(size_t queries, int reps, Fn&& driver) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    driver();
    const double qps = static_cast<double>(queries) / watch.ElapsedSeconds();
    if (qps > best) best = qps;
  }
  return best;
}

// ZipfVertexSampler moved to dspc/graph/zipf_sampler.h (PR 10) so its
// inverse CDF is unit-tested instead of shipping untested in a bench.

/// Synthetic tail-only intersection workload for the per-tier merge
/// kernels: two packed word ranges shaped like the low-rank tail the
/// dense directory does NOT absorb (hubs >= 512), with a controlled
/// overlap. Isolates the kernel the tier sweep is about — full queries
/// dilute it behind the bitmap-AND dense part.
struct TailWorkload {
  std::vector<uint64_t> a;
  std::vector<uint64_t> b;

  TailWorkload(size_t per_side, double overlap, Rng& rng) {
    std::vector<Rank> hubs_a;
    std::vector<Rank> hubs_b;
    Rank hub = 512;
    for (size_t i = 0; i < per_side; ++i) {
      hub += 1 + static_cast<Rank>(rng.NextBounded(7));
      hubs_a.push_back(hub);
      if (rng.NextDouble() < overlap) {
        hubs_b.push_back(hub);
      } else {
        // Non-matching b hubs land either just past the a hub or far
        // away (bimodal), so the kernel sees both dense interleaving
        // and window-skip stretches. The +1 keeps them non-matching.
        hubs_b.push_back(hub + 1u +
                         (rng.NextBounded(2) != 0 ? 1u : 0u) * 4096u);
      }
    }
    std::sort(hubs_b.begin(), hubs_b.end());
    hubs_b.erase(std::unique(hubs_b.begin(), hubs_b.end()), hubs_b.end());
    for (const Rank h : hubs_a) {
      a.push_back(PackLabel(h, 1 + h % 6, 1 + h % 9));
    }
    for (const Rank h : hubs_b) {
      b.push_back(PackLabel(h, 1 + h % 5, 1 + h % 7));
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_query_throughput.json";
  std::string query_dist = "uniform";
  double zipf_s = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--query-dist=", 0) == 0) {
      query_dist = arg.substr(13);
      if (query_dist.rfind("zipf:", 0) == 0) {
        zipf_s = std::stod(query_dist.substr(5));
        if (!(zipf_s > 0.0)) {
          std::fprintf(stderr, "zipf exponent must be > 0: %s\n",
                       arg.c_str());
          return 2;
        }
      } else if (query_dist != "uniform") {
        std::fprintf(stderr,
                     "unknown --query-dist (want uniform or zipf:<s>): %s\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: %s [json-path] [--query-dist=uniform|zipf:<s>]\n",
                   argv[0]);
      return 2;
    } else {
      json_path = arg;
    }
  }
  const size_t f = bench::ScaleFactor();

  // Mid-size heavy-tailed graph, matching the bench_micro fixture recipe.
  const size_t scale = 13;
  const size_t edges = 57000 * f;
  const Graph graph = GenerateRmat(scale, edges, 103);
  std::printf("graph: RMAT scale=%zu  n=%zu  m=%zu\n", scale,
              graph.NumVertices(), graph.NumEdges());

  // Build-thread sweep (DESIGN.md §12): the same construction at 1/2/4/8
  // threads under one shared ordering. The sequential row doubles as the
  // index every query driver below uses; every parallel result must be
  // label-identical to it (build_mismatches gates the exit code).
  struct BuildRow {
    unsigned threads;
    double seconds;
    double speedup;
  };
  std::vector<BuildRow> build_sweep;
  size_t build_mismatches = 0;
  const VertexOrdering build_order = BuildOrdering(graph);
  SpcIndex index;
  double build_s = 0.0;
  for (const unsigned bt : {1u, 2u, 4u, 8u}) {
    ParallelBuildOptions build_opts;
    build_opts.threads = bt;
    Stopwatch build_watch;
    SpcIndex built =
        bt == 1
            ? BuildSpcIndex(graph, VertexOrdering(build_order))
            : BuildSpcIndexParallel(graph, VertexOrdering(build_order),
                                    build_opts);
    const double seconds = build_watch.ElapsedSeconds();
    if (bt == 1) {
      build_s = seconds;
      index = std::move(built);
      build_sweep.push_back({bt, seconds, 1.0});
    } else {
      if (!(built == index)) ++build_mismatches;
      build_sweep.push_back({bt, seconds, build_s / seconds});
    }
  }

  Stopwatch snap_watch;
  const FlatSpcIndex flat(index);
  const double snapshot_s = snap_watch.ElapsedSeconds();

  const IndexSizeStats stats = index.SizeStats();
  std::printf(
      "index: %zu entries  wide=%.2f MB  arena=%.2f MB  overflow=%zu  "
      "build=%.2fs  snapshot=%.4fs\n",
      stats.total_entries, stats.wide_bytes / 1048576.0,
      flat.ArenaBytes() / 1048576.0, flat.OverflowEntries(), build_s,
      snapshot_s);

  const size_t queries = 200000 * f;
  Rng rng(7);
  std::vector<VertexPair> pairs(queries);
  if (zipf_s > 0.0) {
    // Skewed endpoints (satellite of DESIGN.md §14's serving story):
    // both sides of every pair drawn Zipf over degree-ranked vertices.
    ZipfVertexSampler zipf(graph, zipf_s);
    for (auto& p : pairs) {
      p.first = zipf.Sample(rng);
      p.second = zipf.Sample(rng);
    }
  } else {
    for (auto& p : pairs) {
      p.first = static_cast<Vertex>(rng.NextBounded(graph.NumVertices()));
      p.second = static_cast<Vertex>(rng.NextBounded(graph.NumVertices()));
    }
  }
  std::printf("query distribution: %s\n", query_dist.c_str());

  // Results accumulate into a sink so the loops cannot be optimized away.
  uint64_t sink = 0;
  const int reps = 3;

  const double legacy_qps = MeasureQps(queries, reps, [&] {
    for (const auto& [s, t] : pairs) {
      const SpcResult r = index.Query(s, t);
      sink += r.dist + r.count;
    }
  });

  const double flat_qps = MeasureQps(queries, reps, [&] {
    for (const auto& [s, t] : pairs) {
      const SpcResult r = flat.Query(s, t);
      sink += r.dist + r.count;
    }
  });

  // Merge-kernel tier sweep (DESIGN.md §15): every tier forced
  // explicitly — not just whatever the host dispatches — on (a) the full
  // flat single-query driver and (b) a synthetic tail-only intersection
  // that isolates the kernel from the dense bitmap part. Unsupported
  // tiers (AVX2 on older hosts) report supported=false and no numbers.
  struct KernelRow {
    MergeKernelTier tier;
    bool supported;
    double flat_qps;
    double tail_merges_per_sec;
  };
  std::vector<KernelRow> kernel_sweep;
  {
    Rng tail_rng(19);
    const TailWorkload tail(192, 0.25, tail_rng);
    const size_t tail_reps = 200000 * f;
    for (const MergeKernelTier tier :
         {MergeKernelTier::kScalar, MergeKernelTier::kSwar,
          MergeKernelTier::kAvx2}) {
      KernelRow row{tier, false, 0.0, 0.0};
      if (MergeKernelTierSupported(tier) && SetMergeKernelTier(tier)) {
        row.supported = true;
        row.flat_qps = MeasureQps(queries, reps, [&] {
          for (const auto& [s, t] : pairs) {
            const SpcResult r = flat.Query(s, t);
            sink += r.dist + r.count;
          }
        });
        const PackedMergeFn kernel = PackedMergeForTier(tier);
        row.tail_merges_per_sec = MeasureQps(tail_reps, reps, [&] {
          for (size_t i = 0; i < tail_reps; ++i) {
            SpcResult r;
            kernel(tail.a.data(), tail.a.data() + tail.a.size(), nullptr,
                   tail.b.data(), tail.b.data() + tail.b.size(), nullptr,
                   &r);
            sink += r.dist + r.count;
          }
        });
      }
      kernel_sweep.push_back(row);
    }
    ResetMergeKernelTier();  // headline rows ran at the auto tier
  }

  std::vector<SpcResult> batch_out(pairs.size());
  const double batch_qps = MeasureQps(queries, reps, [&] {
    flat.QueryMany(pairs, batch_out.data());
    sink += batch_out.back().dist;
  });

  // The parallel driver writes into a preallocated buffer: at 1 thread it
  // must match the batched loop instead of paying an allocation per call.
  const unsigned threads =
      std::max(1u, std::thread::hardware_concurrency());
  std::vector<SpcResult> parallel_out(pairs.size());
  const double parallel_qps = MeasureQps(queries, reps, [&] {
    flat.QueryManyParallel(pairs, parallel_out.data(), threads);
    sink += parallel_out.front().dist;
  });

  // Shard sweep: the serving layout pays one extra indirection per query
  // endpoint; this row quantifies it per shard count.
  struct ShardRow {
    size_t shards;
    size_t effective;
    double flat_qps;
    double batch_qps;
    double parallel_qps;
  };
  std::vector<ShardRow> sweep;
  for (const size_t shards : {1u, 4u, 16u}) {
    const FlatSpcIndex sharded(index, shards);
    ShardRow row;
    row.shards = shards;
    row.effective = sharded.NumShards();
    row.flat_qps = MeasureQps(queries, reps, [&] {
      for (const auto& [s, t] : pairs) {
        const SpcResult r = sharded.Query(s, t);
        sink += r.dist + r.count;
      }
    });
    row.batch_qps = MeasureQps(queries, reps, [&] {
      sharded.QueryMany(pairs, batch_out.data());
      sink += batch_out.back().dist;
    });
    row.parallel_qps = MeasureQps(queries, reps, [&] {
      sharded.QueryManyParallel(pairs, parallel_out.data(), threads);
      sink += parallel_out.front().dist;
    });
    sweep.push_back(row);
  }

  // Serving through the dynamic facade and through the typed SpcService
  // on top of it (the real serving surface, DESIGN.md §9): adopt a copy
  // of the index and run the same batch under background refresh. The
  // facade row prices the epoch-guarded snapshot pin; the service row
  // adds request validation + consistency routing on top — the
  // service-layer overhead budget is <= 2% of the facade row.
  DynamicSpcOptions facade_options;
  facade_options.snapshot.refresh = RefreshPolicy::kBackground;
  SpcService service(graph, index, facade_options);
  const DynamicSpcIndex& dyn = service.engine();
  const double facade_qps = MeasureQps(queries, reps, [&] {
    auto results = dyn.BatchQuery(pairs, threads);
    sink += results.front().dist;
  });
  ReadOptions service_read;  // kFresh: served from the warm snapshot
  service_read.threads = threads;
  const double service_qps = MeasureQps(queries, reps, [&] {
    auto resp = service.QueryBatch(pairs, service_read);
    sink += resp.ok() ? resp->results.front().dist : 0;
  });
  const double service_overhead_pct =
      facade_qps > 0.0 ? (facade_qps - service_qps) / facade_qps * 100.0
                       : 0.0;

  // Single-query service path (validation + routing per call, no batch
  // amortization) vs the facade's Query.
  const double facade_single_qps = MeasureQps(queries, reps, [&] {
    for (const auto& [s, t] : pairs) {
      const SpcResult r = dyn.Query(s, t);
      sink += r.dist + r.count;
    }
  });
  const double service_single_qps = MeasureQps(queries, reps, [&] {
    for (const auto& [s, t] : pairs) {
      const auto resp = service.Query(s, t);
      sink += resp.ok() ? resp->result.dist + resp->result.count : 0;
    }
  });

  // Hot-pair cache row (DESIGN.md §15): always measured under
  // Zipf-skewed pairs — even when the headline rows ran uniform — so the
  // checked-in JSON carries the hit rate skewed production traffic would
  // see. Snapshot-consistency single reads, cache on vs off, answers
  // cross-checked against the raw index.
  const double cache_zipf_s = zipf_s > 0.0 ? zipf_s : 1.1;
  std::vector<VertexPair> zipf_pairs(queries);
  {
    ZipfVertexSampler zipf(graph, cache_zipf_s);
    Rng zipf_rng(11);
    for (auto& p : zipf_pairs) {
      p.first = zipf.Sample(zipf_rng);
      p.second = zipf.Sample(zipf_rng);
    }
  }
  DynamicSpcOptions cached_options = facade_options;
  cached_options.pair_cache.enabled = true;
  cached_options.pair_cache.capacity = 1 << 16;
  SpcService cached_service(graph, index, cached_options);
  ReadOptions snap_read;
  snap_read.consistency = Consistency::kSnapshot;
  size_t cache_mismatches = 0;
  for (size_t i = 0; i < zipf_pairs.size(); i += 97) {
    const auto resp =
        cached_service.Query(zipf_pairs[i].first, zipf_pairs[i].second,
                             snap_read);
    if (!resp.ok() ||
        !(resp->result ==
          index.Query(zipf_pairs[i].first, zipf_pairs[i].second))) {
      ++cache_mismatches;
    }
  }
  const double uncached_single_qps = MeasureQps(queries, reps, [&] {
    for (const auto& [s, t] : zipf_pairs) {
      const auto resp = service.Query(s, t, snap_read);
      sink += resp.ok() ? resp->result.dist + resp->result.count : 0;
    }
  });
  const double cached_single_qps = MeasureQps(queries, reps, [&] {
    for (const auto& [s, t] : zipf_pairs) {
      const auto resp = cached_service.Query(s, t, snap_read);
      sink += resp.ok() ? resp->result.dist + resp->result.count : 0;
    }
  });
  const MetricsSnapshot cache_metrics = cached_service.Metrics();
  const uint64_t cache_lookups =
      cache_metrics.pair_cache_hits + cache_metrics.pair_cache_misses;
  const double cache_hit_rate =
      cache_lookups != 0 ? static_cast<double>(cache_metrics.pair_cache_hits) /
                               static_cast<double>(cache_lookups)
                         : 0.0;

  // Sanity: the drivers must agree on the whole query set.
  size_t mismatches = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (batch_out[i] != index.Query(pairs[i].first, pairs[i].second)) {
      ++mismatches;
    }
  }

  std::printf("\n%-22s %14s %10s\n", "driver", "queries/s", "speedup");
  bench::PrintRule(4);
  std::printf("%-22s %14.0f %9.2fx\n", "legacy SpcIndex", legacy_qps, 1.0);
  std::printf("%-22s %14.0f %9.2fx\n", "flat arena", flat_qps,
              flat_qps / legacy_qps);
  std::printf("%-22s %14.0f %9.2fx\n", "flat batched", batch_qps,
              batch_qps / legacy_qps);
  std::printf("%-22s %14.0f %9.2fx  (%u threads)\n", "flat batched parallel",
              parallel_qps, parallel_qps / legacy_qps, threads);
  std::printf("%-22s %14.0f %9.2fx  (snapshot pin)\n", "dynamic facade batch",
              facade_qps, facade_qps / legacy_qps);
  std::printf("%-22s %14.0f %9.2fx  (overhead %.2f%%)\n", "SpcService batch",
              service_qps, service_qps / legacy_qps, service_overhead_pct);
  std::printf("%-22s %14.0f %9.2fx\n", "dynamic facade single",
              facade_single_qps, facade_single_qps / legacy_qps);
  std::printf("%-22s %14.0f %9.2fx  (overhead %.2f%%)\n", "SpcService single",
              service_single_qps, service_single_qps / legacy_qps,
              facade_single_qps > 0.0
                  ? (facade_single_qps - service_single_qps) /
                        facade_single_qps * 100.0
                  : 0.0);
  for (const ShardRow& row : sweep) {
    std::printf("%-16s (%2zu) %14.0f %9.2fx  (batch %.0f, parallel %.0f)\n",
                "sharded arena", row.shards, row.flat_qps,
                row.flat_qps / legacy_qps, row.batch_qps, row.parallel_qps);
  }

  const double scalar_tail = kernel_sweep[0].tail_merges_per_sec;
  const double scalar_flat = kernel_sweep[0].flat_qps;
  std::printf("\n%-22s %14s %10s %14s %10s\n", "merge kernel",
              "queries/s", "speedup", "tail merges/s", "speedup");
  bench::PrintRule(5);
  for (const KernelRow& row : kernel_sweep) {
    if (!row.supported) {
      std::printf("%-22s %14s\n", MergeKernelTierName(row.tier),
                  "(unsupported)");
      continue;
    }
    std::printf("%-22s %14.0f %9.2fx %14.0f %9.2fx\n",
                MergeKernelTierName(row.tier), row.flat_qps,
                scalar_flat > 0.0 ? row.flat_qps / scalar_flat : 0.0,
                row.tail_merges_per_sec,
                scalar_tail > 0.0 ? row.tail_merges_per_sec / scalar_tail
                                  : 0.0);
  }
  std::printf("(active tier: %s)\n",
              MergeKernelTierName(ActiveMergeKernelTier()));

  std::printf("\n%-22s %14s %10s\n", "pair cache (zipf)", "queries/s",
              "speedup");
  bench::PrintRule(4);
  std::printf("%-22s %14.0f %9.2fx\n", "service single (off)",
              uncached_single_qps, 1.0);
  std::printf("%-22s %14.0f %9.2fx  (hit rate %.1f%%, evictions %llu)\n",
              "service single (on)", cached_single_qps,
              uncached_single_qps > 0.0
                  ? cached_single_qps / uncached_single_qps
                  : 0.0,
              100.0 * cache_hit_rate,
              static_cast<unsigned long long>(
                  cache_metrics.pair_cache_evictions));
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  std::printf("\n%-22s %14s %10s\n", "build threads", "seconds", "speedup");
  bench::PrintRule(4);
  for (const BuildRow& row : build_sweep) {
    std::printf("%-22u %14.4f %9.2fx\n", row.threads, row.seconds,
                row.speedup);
  }
  std::printf("(hardware threads: %u; parallel builds label-identical: %s)\n",
              hardware_threads, build_mismatches == 0 ? "yes" : "NO");

  std::printf("\nequivalence: %zu mismatches on %zu queries, %zu cached-read "
              "mismatches (sink %llu)\n",
              mismatches, queries, cache_mismatches,
              static_cast<unsigned long long>(sink));

  // The SLO counter surface the service accumulated over the runs above
  // (per-mode counts, served-from split, staleness, batch sizes) — the
  // dump an operator would scrape (DESIGN.md §10).
  std::printf("\n%s", service.Metrics().ToString().c_str());

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"query_throughput\",\n"
               "  \"graph\": {\"generator\": \"rmat\", \"scale\": %zu, "
               "\"vertices\": %zu, \"edges\": %zu},\n"
               "  \"index\": {\"entries\": %zu, \"wide_bytes\": %zu, "
               "\"arena_bytes\": %zu, \"overflow_entries\": %zu,\n"
               "            \"build_seconds\": %.4f, "
               "\"snapshot_seconds\": %.6f},\n"
               "  \"queries\": %zu,\n"
               "  \"query_dist\": \"%s\",\n"
               "  \"zipf_s\": %.3f,\n"
               "  \"threads\": %u,\n"
               "  \"legacy_qps\": %.0f,\n"
               "  \"flat_qps\": %.0f,\n"
               "  \"flat_batch_qps\": %.0f,\n"
               "  \"flat_parallel_qps\": %.0f,\n"
               "  \"facade_batch_qps\": %.0f,\n"
               "  \"service_batch_qps\": %.0f,\n"
               "  \"service_batch_overhead_pct\": %.3f,\n"
               "  \"facade_single_qps\": %.0f,\n"
               "  \"service_single_qps\": %.0f,\n"
               "  \"flat_speedup\": %.3f,\n"
               "  \"flat_batch_speedup\": %.3f,\n"
               "  \"flat_parallel_speedup\": %.3f,\n"
               "  \"facade_batch_speedup\": %.3f,\n"
               "  \"mismatches\": %zu,\n"
               "  \"build_mismatches\": %zu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"build_thread_sweep\": [\n",
               scale, graph.NumVertices(), graph.NumEdges(),
               stats.total_entries, stats.wide_bytes, flat.ArenaBytes(),
               flat.OverflowEntries(), build_s, snapshot_s, queries,
               query_dist.c_str(), zipf_s, threads,
               legacy_qps, flat_qps, batch_qps, parallel_qps, facade_qps,
               service_qps, service_overhead_pct, facade_single_qps,
               service_single_qps, flat_qps / legacy_qps,
               batch_qps / legacy_qps, parallel_qps / legacy_qps,
               facade_qps / legacy_qps, mismatches, build_mismatches,
               hardware_threads);
  for (size_t i = 0; i < build_sweep.size(); ++i) {
    const BuildRow& row = build_sweep[i];
    std::fprintf(json,
                 "    %s{\"threads\": %u, \"build_seconds\": %.4f, "
                 "\"speedup\": %.3f}\n",
                 i == 0 ? "" : ",", row.threads, row.seconds, row.speedup);
  }
  std::fprintf(json,
               "  ],\n"
               "  \"shard_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const ShardRow& row = sweep[i];
    std::fprintf(json,
                 "    %s{\"shards\": %zu, \"effective_shards\": %zu, "
                 "\"flat_qps\": %.0f, \"batch_qps\": %.0f, "
                 "\"parallel_qps\": %.0f}\n",
                 i == 0 ? "" : ",", row.shards, row.effective, row.flat_qps,
                 row.batch_qps, row.parallel_qps);
  }
  std::fprintf(json,
               "  ],\n"
               "  \"kernel_tier_sweep\": [\n");
  for (size_t i = 0; i < kernel_sweep.size(); ++i) {
    const KernelRow& row = kernel_sweep[i];
    std::fprintf(
        json,
        "    %s{\"tier\": \"%s\", \"supported\": %s, \"flat_qps\": %.0f, "
        "\"tail_merges_per_sec\": %.0f, \"tail_speedup_vs_scalar\": %.3f}\n",
        i == 0 ? "" : ",", MergeKernelTierName(row.tier),
        row.supported ? "true" : "false", row.flat_qps,
        row.tail_merges_per_sec,
        row.supported && scalar_tail > 0.0
            ? row.tail_merges_per_sec / scalar_tail
            : 0.0);
  }
  std::fprintf(
      json,
      "  ],\n"
      "  \"pair_cache\": {\"zipf_s\": %.3f, \"capacity\": %zu, "
      "\"hits\": %llu, \"misses\": %llu, \"hit_rate\": %.4f,\n"
      "                 \"insertions\": %llu, \"evictions\": %llu, "
      "\"cached_single_qps\": %.0f, \"uncached_single_qps\": %.0f,\n"
      "                 \"speedup\": %.3f, \"mismatches\": %zu}\n"
      "}\n",
      cache_zipf_s, static_cast<size_t>(cached_options.pair_cache.capacity),
      static_cast<unsigned long long>(cache_metrics.pair_cache_hits),
      static_cast<unsigned long long>(cache_metrics.pair_cache_misses),
      cache_hit_rate,
      static_cast<unsigned long long>(cache_metrics.pair_cache_insertions),
      static_cast<unsigned long long>(cache_metrics.pair_cache_evictions),
      cached_single_qps, uncached_single_qps,
      uncached_single_qps > 0.0 ? cached_single_qps / uncached_single_qps
                                : 0.0,
      cache_mismatches);
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return mismatches == 0 && build_mismatches == 0 && cache_mismatches == 0
             ? 0
             : 1;
}
