// Query-throughput shoot-out: legacy SpcIndex::Query vs the FlatSpcIndex
// packed arena, its batched driver, and the thread-parallel batch driver —
// all on the same graph and the same query set — plus a shard-count sweep
// (1/4/16 vertex-range shards) quantifying what the sharded serving
// layout costs the query path, and facade-vs-SpcService rows pricing the
// typed serving API (validation + consistency routing, DESIGN.md §9)
// against direct facade calls. Emits a human table on stdout and
// machine-readable JSON (BENCH_query_throughput.json, override with
// argv[1]) for the repo's benchmark trajectory.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "dspc/api/spc_service.h"
#include "dspc/common/rng.h"
#include "dspc/common/stopwatch.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/hp_spc.h"
#include "dspc/core/parallel_build.h"
#include "dspc/graph/generators.h"

namespace {

using namespace dspc;

/// Best-of-`reps` queries/second for one driver.
template <typename Fn>
double MeasureQps(size_t queries, int reps, Fn&& driver) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    driver();
    const double qps = static_cast<double>(queries) / watch.ElapsedSeconds();
    if (qps > best) best = qps;
  }
  return best;
}

/// Zipf(s) sampler over the graph's vertices, hottest id = highest
/// degree: P(rank i) proportional to 1/(i+1)^s, so real-workload skew
/// (a few celebrity endpoints, a long cold tail) hits the arena's dense
/// hub directory the way production traffic would. Exact inverse-CDF
/// sampling — the table is n doubles, built once.
class ZipfVertexSampler {
 public:
  ZipfVertexSampler(const Graph& graph, double s) {
    const size_t n = graph.NumVertices();
    by_rank_.resize(n);
    std::iota(by_rank_.begin(), by_rank_.end(), Vertex{0});
    std::sort(by_rank_.begin(), by_rank_.end(), [&](Vertex a, Vertex b) {
      const size_t da = graph.Degree(a), db = graph.Degree(b);
      return da != db ? da > db : a < b;
    });
    cdf_.resize(n);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = acc;
    }
    total_ = acc;
  }

  Vertex Sample(Rng& rng) {
    // 53-bit mantissa uniform in [0, total).
    const double u =
        static_cast<double>(rng.Next() >> 11) * 0x1.0p-53 * total_;
    const size_t i = static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    return by_rank_[i < by_rank_.size() ? i : by_rank_.size() - 1];
  }

 private:
  std::vector<Vertex> by_rank_;
  std::vector<double> cdf_;
  double total_ = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_query_throughput.json";
  std::string query_dist = "uniform";
  double zipf_s = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--query-dist=", 0) == 0) {
      query_dist = arg.substr(13);
      if (query_dist.rfind("zipf:", 0) == 0) {
        zipf_s = std::stod(query_dist.substr(5));
        if (!(zipf_s > 0.0)) {
          std::fprintf(stderr, "zipf exponent must be > 0: %s\n",
                       arg.c_str());
          return 2;
        }
      } else if (query_dist != "uniform") {
        std::fprintf(stderr,
                     "unknown --query-dist (want uniform or zipf:<s>): %s\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: %s [json-path] [--query-dist=uniform|zipf:<s>]\n",
                   argv[0]);
      return 2;
    } else {
      json_path = arg;
    }
  }
  const size_t f = bench::ScaleFactor();

  // Mid-size heavy-tailed graph, matching the bench_micro fixture recipe.
  const size_t scale = 13;
  const size_t edges = 57000 * f;
  const Graph graph = GenerateRmat(scale, edges, 103);
  std::printf("graph: RMAT scale=%zu  n=%zu  m=%zu\n", scale,
              graph.NumVertices(), graph.NumEdges());

  // Build-thread sweep (DESIGN.md §12): the same construction at 1/2/4/8
  // threads under one shared ordering. The sequential row doubles as the
  // index every query driver below uses; every parallel result must be
  // label-identical to it (build_mismatches gates the exit code).
  struct BuildRow {
    unsigned threads;
    double seconds;
    double speedup;
  };
  std::vector<BuildRow> build_sweep;
  size_t build_mismatches = 0;
  const VertexOrdering build_order = BuildOrdering(graph);
  SpcIndex index;
  double build_s = 0.0;
  for (const unsigned bt : {1u, 2u, 4u, 8u}) {
    ParallelBuildOptions build_opts;
    build_opts.threads = bt;
    Stopwatch build_watch;
    SpcIndex built =
        bt == 1
            ? BuildSpcIndex(graph, VertexOrdering(build_order))
            : BuildSpcIndexParallel(graph, VertexOrdering(build_order),
                                    build_opts);
    const double seconds = build_watch.ElapsedSeconds();
    if (bt == 1) {
      build_s = seconds;
      index = std::move(built);
      build_sweep.push_back({bt, seconds, 1.0});
    } else {
      if (!(built == index)) ++build_mismatches;
      build_sweep.push_back({bt, seconds, build_s / seconds});
    }
  }

  Stopwatch snap_watch;
  const FlatSpcIndex flat(index);
  const double snapshot_s = snap_watch.ElapsedSeconds();

  const IndexSizeStats stats = index.SizeStats();
  std::printf(
      "index: %zu entries  wide=%.2f MB  arena=%.2f MB  overflow=%zu  "
      "build=%.2fs  snapshot=%.4fs\n",
      stats.total_entries, stats.wide_bytes / 1048576.0,
      flat.ArenaBytes() / 1048576.0, flat.OverflowEntries(), build_s,
      snapshot_s);

  const size_t queries = 200000 * f;
  Rng rng(7);
  std::vector<VertexPair> pairs(queries);
  if (zipf_s > 0.0) {
    // Skewed endpoints (satellite of DESIGN.md §14's serving story):
    // both sides of every pair drawn Zipf over degree-ranked vertices.
    ZipfVertexSampler zipf(graph, zipf_s);
    for (auto& p : pairs) {
      p.first = zipf.Sample(rng);
      p.second = zipf.Sample(rng);
    }
  } else {
    for (auto& p : pairs) {
      p.first = static_cast<Vertex>(rng.NextBounded(graph.NumVertices()));
      p.second = static_cast<Vertex>(rng.NextBounded(graph.NumVertices()));
    }
  }
  std::printf("query distribution: %s\n", query_dist.c_str());

  // Results accumulate into a sink so the loops cannot be optimized away.
  uint64_t sink = 0;
  const int reps = 3;

  const double legacy_qps = MeasureQps(queries, reps, [&] {
    for (const auto& [s, t] : pairs) {
      const SpcResult r = index.Query(s, t);
      sink += r.dist + r.count;
    }
  });

  const double flat_qps = MeasureQps(queries, reps, [&] {
    for (const auto& [s, t] : pairs) {
      const SpcResult r = flat.Query(s, t);
      sink += r.dist + r.count;
    }
  });

  std::vector<SpcResult> batch_out(pairs.size());
  const double batch_qps = MeasureQps(queries, reps, [&] {
    flat.QueryMany(pairs, batch_out.data());
    sink += batch_out.back().dist;
  });

  // The parallel driver writes into a preallocated buffer: at 1 thread it
  // must match the batched loop instead of paying an allocation per call.
  const unsigned threads =
      std::max(1u, std::thread::hardware_concurrency());
  std::vector<SpcResult> parallel_out(pairs.size());
  const double parallel_qps = MeasureQps(queries, reps, [&] {
    flat.QueryManyParallel(pairs, parallel_out.data(), threads);
    sink += parallel_out.front().dist;
  });

  // Shard sweep: the serving layout pays one extra indirection per query
  // endpoint; this row quantifies it per shard count.
  struct ShardRow {
    size_t shards;
    size_t effective;
    double flat_qps;
    double batch_qps;
    double parallel_qps;
  };
  std::vector<ShardRow> sweep;
  for (const size_t shards : {1u, 4u, 16u}) {
    const FlatSpcIndex sharded(index, shards);
    ShardRow row;
    row.shards = shards;
    row.effective = sharded.NumShards();
    row.flat_qps = MeasureQps(queries, reps, [&] {
      for (const auto& [s, t] : pairs) {
        const SpcResult r = sharded.Query(s, t);
        sink += r.dist + r.count;
      }
    });
    row.batch_qps = MeasureQps(queries, reps, [&] {
      sharded.QueryMany(pairs, batch_out.data());
      sink += batch_out.back().dist;
    });
    row.parallel_qps = MeasureQps(queries, reps, [&] {
      sharded.QueryManyParallel(pairs, parallel_out.data(), threads);
      sink += parallel_out.front().dist;
    });
    sweep.push_back(row);
  }

  // Serving through the dynamic facade and through the typed SpcService
  // on top of it (the real serving surface, DESIGN.md §9): adopt a copy
  // of the index and run the same batch under background refresh. The
  // facade row prices the epoch-guarded snapshot pin; the service row
  // adds request validation + consistency routing on top — the
  // service-layer overhead budget is <= 2% of the facade row.
  DynamicSpcOptions facade_options;
  facade_options.snapshot.refresh = RefreshPolicy::kBackground;
  SpcService service(graph, index, facade_options);
  const DynamicSpcIndex& dyn = service.engine();
  const double facade_qps = MeasureQps(queries, reps, [&] {
    auto results = dyn.BatchQuery(pairs, threads);
    sink += results.front().dist;
  });
  ReadOptions service_read;  // kFresh: served from the warm snapshot
  service_read.threads = threads;
  const double service_qps = MeasureQps(queries, reps, [&] {
    auto resp = service.QueryBatch(pairs, service_read);
    sink += resp.ok() ? resp->results.front().dist : 0;
  });
  const double service_overhead_pct =
      facade_qps > 0.0 ? (facade_qps - service_qps) / facade_qps * 100.0
                       : 0.0;

  // Single-query service path (validation + routing per call, no batch
  // amortization) vs the facade's Query.
  const double facade_single_qps = MeasureQps(queries, reps, [&] {
    for (const auto& [s, t] : pairs) {
      const SpcResult r = dyn.Query(s, t);
      sink += r.dist + r.count;
    }
  });
  const double service_single_qps = MeasureQps(queries, reps, [&] {
    for (const auto& [s, t] : pairs) {
      const auto resp = service.Query(s, t);
      sink += resp.ok() ? resp->result.dist + resp->result.count : 0;
    }
  });

  // Sanity: the drivers must agree on the whole query set.
  size_t mismatches = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (batch_out[i] != index.Query(pairs[i].first, pairs[i].second)) {
      ++mismatches;
    }
  }

  std::printf("\n%-22s %14s %10s\n", "driver", "queries/s", "speedup");
  bench::PrintRule(4);
  std::printf("%-22s %14.0f %9.2fx\n", "legacy SpcIndex", legacy_qps, 1.0);
  std::printf("%-22s %14.0f %9.2fx\n", "flat arena", flat_qps,
              flat_qps / legacy_qps);
  std::printf("%-22s %14.0f %9.2fx\n", "flat batched", batch_qps,
              batch_qps / legacy_qps);
  std::printf("%-22s %14.0f %9.2fx  (%u threads)\n", "flat batched parallel",
              parallel_qps, parallel_qps / legacy_qps, threads);
  std::printf("%-22s %14.0f %9.2fx  (snapshot pin)\n", "dynamic facade batch",
              facade_qps, facade_qps / legacy_qps);
  std::printf("%-22s %14.0f %9.2fx  (overhead %.2f%%)\n", "SpcService batch",
              service_qps, service_qps / legacy_qps, service_overhead_pct);
  std::printf("%-22s %14.0f %9.2fx\n", "dynamic facade single",
              facade_single_qps, facade_single_qps / legacy_qps);
  std::printf("%-22s %14.0f %9.2fx  (overhead %.2f%%)\n", "SpcService single",
              service_single_qps, service_single_qps / legacy_qps,
              facade_single_qps > 0.0
                  ? (facade_single_qps - service_single_qps) /
                        facade_single_qps * 100.0
                  : 0.0);
  for (const ShardRow& row : sweep) {
    std::printf("%-16s (%2zu) %14.0f %9.2fx  (batch %.0f, parallel %.0f)\n",
                "sharded arena", row.shards, row.flat_qps,
                row.flat_qps / legacy_qps, row.batch_qps, row.parallel_qps);
  }
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  std::printf("\n%-22s %14s %10s\n", "build threads", "seconds", "speedup");
  bench::PrintRule(4);
  for (const BuildRow& row : build_sweep) {
    std::printf("%-22u %14.4f %9.2fx\n", row.threads, row.seconds,
                row.speedup);
  }
  std::printf("(hardware threads: %u; parallel builds label-identical: %s)\n",
              hardware_threads, build_mismatches == 0 ? "yes" : "NO");

  std::printf("\nequivalence: %zu mismatches on %zu queries (sink %llu)\n",
              mismatches, queries,
              static_cast<unsigned long long>(sink));

  // The SLO counter surface the service accumulated over the runs above
  // (per-mode counts, served-from split, staleness, batch sizes) — the
  // dump an operator would scrape (DESIGN.md §10).
  std::printf("\n%s", service.Metrics().ToString().c_str());

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"query_throughput\",\n"
               "  \"graph\": {\"generator\": \"rmat\", \"scale\": %zu, "
               "\"vertices\": %zu, \"edges\": %zu},\n"
               "  \"index\": {\"entries\": %zu, \"wide_bytes\": %zu, "
               "\"arena_bytes\": %zu, \"overflow_entries\": %zu,\n"
               "            \"build_seconds\": %.4f, "
               "\"snapshot_seconds\": %.6f},\n"
               "  \"queries\": %zu,\n"
               "  \"query_dist\": \"%s\",\n"
               "  \"zipf_s\": %.3f,\n"
               "  \"threads\": %u,\n"
               "  \"legacy_qps\": %.0f,\n"
               "  \"flat_qps\": %.0f,\n"
               "  \"flat_batch_qps\": %.0f,\n"
               "  \"flat_parallel_qps\": %.0f,\n"
               "  \"facade_batch_qps\": %.0f,\n"
               "  \"service_batch_qps\": %.0f,\n"
               "  \"service_batch_overhead_pct\": %.3f,\n"
               "  \"facade_single_qps\": %.0f,\n"
               "  \"service_single_qps\": %.0f,\n"
               "  \"flat_speedup\": %.3f,\n"
               "  \"flat_batch_speedup\": %.3f,\n"
               "  \"flat_parallel_speedup\": %.3f,\n"
               "  \"facade_batch_speedup\": %.3f,\n"
               "  \"mismatches\": %zu,\n"
               "  \"build_mismatches\": %zu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"build_thread_sweep\": [\n",
               scale, graph.NumVertices(), graph.NumEdges(),
               stats.total_entries, stats.wide_bytes, flat.ArenaBytes(),
               flat.OverflowEntries(), build_s, snapshot_s, queries,
               query_dist.c_str(), zipf_s, threads,
               legacy_qps, flat_qps, batch_qps, parallel_qps, facade_qps,
               service_qps, service_overhead_pct, facade_single_qps,
               service_single_qps, flat_qps / legacy_qps,
               batch_qps / legacy_qps, parallel_qps / legacy_qps,
               facade_qps / legacy_qps, mismatches, build_mismatches,
               hardware_threads);
  for (size_t i = 0; i < build_sweep.size(); ++i) {
    const BuildRow& row = build_sweep[i];
    std::fprintf(json,
                 "    %s{\"threads\": %u, \"build_seconds\": %.4f, "
                 "\"speedup\": %.3f}\n",
                 i == 0 ? "" : ",", row.threads, row.seconds, row.speedup);
  }
  std::fprintf(json,
               "  ],\n"
               "  \"shard_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const ShardRow& row = sweep[i];
    std::fprintf(json,
                 "    %s{\"shards\": %zu, \"effective_shards\": %zu, "
                 "\"flat_qps\": %.0f, \"batch_qps\": %.0f, "
                 "\"parallel_qps\": %.0f}\n",
                 i == 0 ? "" : ",", row.shards, row.effective, row.flat_qps,
                 row.batch_qps, row.parallel_qps);
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return mismatches == 0 && build_mismatches == 0 ? 0 : 1;
}
