// Figure 11: Running Times of IncSPC and DecSPC for varying degrees of
// inserted and deleted edges, where an edge's degree is deg(u)*deg(v).
// Shape: no significant correlation between edge degree and update time
// (paper §4.5) — low-degree edges can still carry many shortest paths.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "dspc/common/stopwatch.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/update_stream.h"

namespace {

/// Pearson correlation between log1p(degree product) and time.
double LogCorrelation(const std::vector<std::pair<uint64_t, double>>& xy) {
  if (xy.size() < 3) return 0.0;
  double mx = 0;
  double my = 0;
  for (const auto& [x, y] : xy) {
    mx += std::log1p(static_cast<double>(x));
    my += y;
  }
  mx /= xy.size();
  my /= xy.size();
  double sxy = 0;
  double sxx = 0;
  double syy = 0;
  for (const auto& [x, y] : xy) {
    const double dx = std::log1p(static_cast<double>(x)) - mx;
    const double dy = y - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0 || syy == 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

int main() {
  using namespace dspc;
  using namespace dspc::bench;

  const size_t insertions = InsertionsPerGraph();
  const size_t deletions = DeletionsPerGraph() * 2;
  std::printf(
      "Figure 11: Update time vs edge degree deg(u)*deg(v) "
      "(%zu insertions, %zu deletions)\n",
      insertions, deletions);

  for (Dataset& d : MakeDatasets()) {
    if (d.name != "BKS" && d.name != "WAR" && d.name != "IND") continue;
    SpcIndex index = BuildOrLoadIndex(d, nullptr);
    DynamicSpcIndex dyn(d.graph, std::move(index));

    std::vector<std::pair<uint64_t, double>> inc_points;
    for (const SkewedEdgeSample& s :
         SampleSkewedNonEdges(dyn.graph(), insertions, 801)) {
      Stopwatch sw;
      if (dyn.InsertEdge(s.edge.u, s.edge.v).applied) {
        inc_points.push_back({s.degree_product, sw.ElapsedMillis()});
      }
    }
    std::vector<std::pair<uint64_t, double>> dec_points;
    for (const SkewedEdgeSample& s :
         SampleSkewedEdges(dyn.graph(), deletions, 802)) {
      Stopwatch sw;
      if (dyn.RemoveEdge(s.edge.u, s.edge.v).applied) {
        dec_points.push_back({s.degree_product, sw.ElapsedMillis()});
      }
    }

    std::printf("\n--- %s (IncSPC): degree-product vs ms ---\n",
                d.name.c_str());
    for (size_t i = 0; i < inc_points.size(); i += 10) {
      std::printf("  deg=%-12llu t=%.3fms\n",
                  static_cast<unsigned long long>(inc_points[i].first),
                  inc_points[i].second);
    }
    std::printf("--- %s (DecSPC): degree-product vs ms ---\n", d.name.c_str());
    for (const auto& [deg, ms] : dec_points) {
      std::printf("  deg=%-12llu t=%.3fms\n",
                  static_cast<unsigned long long>(deg), ms);
    }
    std::printf("%s correlation(log deg, time): inc=%.3f dec=%.3f\n",
                d.name.c_str(), LogCorrelation(inc_points),
                LogCorrelation(dec_points));
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check vs paper: correlations stay weak — update cost is\n"
      "driven by affected-set sizes, not by the touched edge's degree.\n");
  return 0;
}
