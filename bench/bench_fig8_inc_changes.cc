// Figure 8: Average Number of Renewed Labels and Newly Inserted Labels
// for Incremental Update, split into RenewC (count renewed only), RenewD
// (distance renewed) and Insert. Shape: RenewD is the minority type on
// all graphs (paper §4.2.2 observation i), and the implied index growth
// (Insert x 8 bytes) is tiny relative to index size.

#include <cstdio>

#include "bench_util.h"
#include "dspc/common/stats.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/update_stream.h"

int main() {
  using namespace dspc;
  using namespace dspc::bench;

  const size_t insertions = InsertionsPerGraph();
  std::printf(
      "Figure 8: Avg Renewed/Inserted Labels per Incremental Update "
      "(%zu insertions)\n\n",
      insertions);
  std::printf("%-6s %12s %12s %12s %14s %14s\n", "Graph", "RenewC", "RenewD",
              "Insert", "growth (KB)", "index (MB)");
  PrintRule(7);

  for (Dataset& d : MakeDatasets()) {
    SpcIndex index = BuildOrLoadIndex(d, nullptr);
    const double index_mb =
        static_cast<double>(index.SizeStats().packed_bytes) / 1e6;
    DynamicSpcIndex dyn(d.graph, std::move(index));

    LabelChangeTotals totals;
    for (const Edge& e : SampleNonEdges(dyn.graph(), insertions, 501)) {
      const UpdateStats stats = dyn.InsertEdge(e.u, e.v);
      if (!stats.applied) continue;
      ++totals.updates;
      totals.renew_count += stats.renew_count;
      totals.renew_dist += stats.renew_dist;
      totals.inserted += stats.inserted;
    }
    // Index growth per update under the paper's 8-byte packed entries.
    const double growth_kb = totals.MeanInserted() * 8.0 / 1e3;
    std::printf("%-6s %12.1f %12.1f %12.1f %14.2f %14.2f\n", d.name.c_str(),
                totals.MeanRenewCount(), totals.MeanRenewDist(),
                totals.MeanInserted(), growth_kb, index_mb);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check vs paper: RenewD is the minority update type; per-update\n"
      "index growth is KB-scale against an MB-scale index.\n");
  return 0;
}
