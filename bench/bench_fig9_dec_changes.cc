// Figure 9: Average Number of Renewed, Newly Inserted, and Removed Labels
// for Decremental Update. Shape: renewed labels (especially RenewC)
// dominate; the net size change (Remove - Insert) is tiny (paper §4.3.2).

#include <cstdio>

#include "bench_util.h"
#include "dspc/common/stats.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/update_stream.h"

int main() {
  using namespace dspc;
  using namespace dspc::bench;

  const size_t deletions = DeletionsPerGraph();
  std::printf(
      "Figure 9: Avg Renewed/Inserted/Removed Labels per Decremental Update "
      "(%zu deletions)\n\n",
      deletions);
  std::printf("%-6s %12s %12s %12s %12s %16s\n", "Graph", "RenewC", "RenewD",
              "Insert", "Remove", "net change (KB)");
  PrintRule(8);

  for (Dataset& d : MakeDatasets()) {
    SpcIndex index = BuildOrLoadIndex(d, nullptr);
    DynamicSpcIndex dyn(d.graph, std::move(index));

    LabelChangeTotals totals;
    for (const Edge& e : SampleEdges(dyn.graph(), deletions, 601)) {
      const UpdateStats stats = dyn.RemoveEdge(e.u, e.v);
      if (!stats.applied) continue;
      ++totals.updates;
      totals.renew_count += stats.renew_count;
      totals.renew_dist += stats.renew_dist;
      totals.inserted += stats.inserted;
      totals.removed += stats.removed;
    }
    const double net_kb =
        (totals.MeanInserted() - totals.MeanRemoved()) * 8.0 / 1e3;
    std::printf("%-6s %12.1f %12.1f %12.1f %12.1f %16.2f\n", d.name.c_str(),
                totals.MeanRenewCount(), totals.MeanRenewDist(),
                totals.MeanInserted(), totals.MeanRemoved(), net_kb);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check vs paper: renewals dominate (no size change); the net\n"
      "index-size drift per deletion is only KB-scale.\n");
  return 0;
}
