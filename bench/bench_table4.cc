// Table 4: Index Size (MB), Index Time and Average Inc/Dec Update Time.
//
// For each graph: build (or load) the SPC-Index, report its size under
// the paper's packed 64-bit encoding, the HP-SPC construction time (the
// reconstruction baseline), the average IncSPC time over random edge
// insertions, and the average DecSPC time over random edge deletions.
// The expected shape (paper §4.2.1/§4.3.1): IncSPC is orders of magnitude
// below the index time; DecSPC is slower than IncSPC but still far below
// reconstruction.

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "dspc/common/stopwatch.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/hp_spc.h"
#include "dspc/core/parallel_build.h"
#include "dspc/graph/update_stream.h"

int main() {
  using namespace dspc;
  using namespace dspc::bench;

  const size_t insertions = InsertionsPerGraph();
  const size_t deletions = DeletionsPerGraph();
  std::printf(
      "Table 4: Index Size (MB), Index Time and Average Inc/Dec Update "
      "Time (sec)\n");
  std::printf("(%zu random insertions, %zu random deletions per graph)\n\n",
              insertions, deletions);
  std::printf("%-6s %10s %10s %10s %10s %12s %12s %10s %10s\n", "Graph",
              "L Size", "Flat MB", "Snap", "L Time", "IncSPC", "DecSPC",
              "Inc spd", "Dec spd");
  PrintRule(9);

  for (Dataset& d : MakeDatasets()) {
    double build_seconds = 0.0;
    SpcIndex index = BuildOrLoadIndex(d, &build_seconds);
    const IndexSizeStats size = index.SizeStats();

    // The serving-side snapshot (flat arena) built from the same index.
    Stopwatch snap_watch;
    const size_t flat_bytes = FlatSpcIndex(index).ArenaBytes();
    const double snap_seconds = snap_watch.ElapsedSeconds();

    DynamicSpcIndex dyn(d.graph, std::move(index));

    // Incremental phase.
    const std::vector<Edge> inserts =
        SampleNonEdges(dyn.graph(), insertions, 201);
    Stopwatch inc_watch;
    for (const Edge& e : inserts) dyn.InsertEdge(e.u, e.v);
    const double inc_avg =
        inserts.empty() ? 0.0 : inc_watch.ElapsedSeconds() / inserts.size();

    // Decremental phase (delete edges of the updated graph, as the paper
    // samples from the current graph).
    const std::vector<Edge> deletes = SampleEdges(dyn.graph(), deletions, 202);
    Stopwatch dec_watch;
    for (const Edge& e : deletes) dyn.RemoveEdge(e.u, e.v);
    const double dec_avg =
        deletes.empty() ? 0.0 : dec_watch.ElapsedSeconds() / deletes.size();

    std::printf("%-6s %10s %10s %10s %10s %12s %12s %9.0fx %9.0fx\n",
                d.name.c_str(), FormatMb(size.packed_bytes).c_str(),
                FormatMb(flat_bytes).c_str(),
                FormatSeconds(snap_seconds).c_str(),
                FormatSeconds(build_seconds).c_str(),
                FormatSeconds(inc_avg).c_str(),
                FormatSeconds(dec_avg).c_str(),
                inc_avg > 0 ? build_seconds / inc_avg : 0.0,
                dec_avg > 0 ? build_seconds / dec_avg : 0.0);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check vs paper: IncSPC 2-4 orders below L Time; DecSPC slower\n"
      "than IncSPC but 1-2 orders below L Time. Flat MB is the serving\n"
      "snapshot's resident arena (packed entries + dense directory).\n");

  // Build-thread sweep (DESIGN.md §12): the full HP-SPC construction of
  // each dataset at 1/2/4/8 threads under one shared ordering, bypassing
  // the bench cache on purpose. Every parallel build is checked
  // label-identical to the sequential one.
  constexpr unsigned kBuildThreads[] = {1, 2, 4, 8};
  std::printf(
      "\nBuild-thread sweep: full HP-SPC construction seconds by thread "
      "count\n(hardware threads: %u)\n\n",
      std::thread::hardware_concurrency());
  std::printf("%-6s %10s %10s %10s %10s %10s %10s\n", "Graph", "t=1", "t=2",
              "t=4", "t=8", "spd@8", "equal");
  PrintRule(7);
  bool all_equal = true;
  for (Dataset& d : MakeDatasets()) {
    const VertexOrdering order = BuildOrdering(d.graph);
    double seconds[4] = {};
    bool equal = true;
    SpcIndex sequential;
    for (size_t i = 0; i < 4; ++i) {
      ParallelBuildOptions opts;
      opts.threads = kBuildThreads[i];
      Stopwatch watch;
      SpcIndex built =
          kBuildThreads[i] == 1
              ? BuildSpcIndex(d.graph, VertexOrdering(order))
              : BuildSpcIndexParallel(d.graph, VertexOrdering(order), opts);
      seconds[i] = watch.ElapsedSeconds();
      if (kBuildThreads[i] == 1) {
        sequential = std::move(built);
      } else if (!(built == sequential)) {
        equal = false;
      }
    }
    all_equal = all_equal && equal;
    std::printf("%-6s %10s %10s %10s %10s %9.2fx %10s\n", d.name.c_str(),
                FormatSeconds(seconds[0]).c_str(),
                FormatSeconds(seconds[1]).c_str(),
                FormatSeconds(seconds[2]).c_str(),
                FormatSeconds(seconds[3]).c_str(),
                seconds[3] > 0 ? seconds[0] / seconds[3] : 0.0,
                equal ? "yes" : "NO");
    std::fflush(stdout);
  }
  return all_equal ? 0 : 1;
}
