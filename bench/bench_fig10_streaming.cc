// Figure 10: Accumulated Running Times (sec) and Index Size Changes (MB)
// of Streaming Update — a hybrid stream of 100 random insertions + 10
// random deletions (scaled) on the paper's BKS, WAR, IND. Shape: the
// accumulated time curve grows gradually with jumps at deletions; total
// index growth is negligible versus the original size.

#include <cstdio>

#include "bench_util.h"
#include "dspc/common/stopwatch.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/update_stream.h"

int main() {
  using namespace dspc;
  using namespace dspc::bench;

  const size_t insertions = InsertionsPerGraph();
  const size_t deletions = DeletionsPerGraph();
  std::printf(
      "Figure 10: Streaming Update (hybrid: %zu insertions + %zu deletions)\n",
      insertions, deletions);
  std::printf("Series printed every 10 updates per graph.\n");

  for (Dataset& d : MakeDatasets()) {
    if (d.name != "BKS" && d.name != "WAR" && d.name != "IND") continue;
    SpcIndex index = BuildOrLoadIndex(d, nullptr);
    const size_t size_before = index.SizeStats().packed_bytes;
    DynamicSpcIndex dyn(d.graph, std::move(index));

    const std::vector<Update> stream =
        MakeHybridStream(dyn.graph(), insertions, deletions, 701);

    std::printf("\n--- %s: accumulated seconds / index delta (KB) ---\n",
                d.name.c_str());
    std::printf("%8s %14s %14s %8s\n", "update#", "accum time", "delta KB",
                "kind");
    double accum = 0.0;
    size_t step = 0;
    for (const Update& u : stream) {
      Stopwatch sw;
      dyn.Apply(u);
      accum += sw.ElapsedSeconds();
      ++step;
      const bool is_delete = u.kind == Update::Kind::kDelete;
      if (step % 10 == 0 || is_delete || step == stream.size()) {
        const size_t size_now = dyn.index().SizeStats().packed_bytes;
        const double delta_kb =
            (static_cast<double>(size_now) - static_cast<double>(size_before)) /
            1e3;
        std::printf("%8zu %14s %14.1f %8s\n", step,
                    FormatSeconds(accum).c_str(), delta_kb,
                    is_delete ? "del" : "ins");
      }
    }
    const double avg = accum / static_cast<double>(stream.size());
    std::printf("%s: avg hybrid update %s, total %s, index growth %.1f KB\n",
                d.name.c_str(), FormatSeconds(avg).c_str(),
                FormatSeconds(accum).c_str(),
                (static_cast<double>(dyn.index().SizeStats().packed_bytes) -
                 static_cast<double>(size_before)) /
                    1e3);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check vs paper: time accumulates gradually with jumps at\n"
      "deletions; the total index-size change is negligible vs the index.\n");
  return 0;
}
