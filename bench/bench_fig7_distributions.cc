// Figure 7: Distribution of Running Times.
//   (a) per-insertion IncSPC times: median / p25 / p75 vs index time
//   (b) per-deletion DecSPC times: median / p25 / p75 vs index time
//   (c) query time: BiBFS vs labeling on the original index and after
//       the incremental and decremental batches.
// Shapes: inc distributions tight and far below the index-time line; dec
// dispersed (paper §4.3.1 observation ii); labeling queries orders of
// magnitude below BiBFS and unchanged by maintenance.

#include <cstdio>

#include "bench_util.h"
#include "dspc/baseline/bibfs_counting.h"
#include "dspc/common/rng.h"
#include "dspc/common/stats.h"
#include "dspc/common/stopwatch.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/update_stream.h"

namespace {

using namespace dspc;

/// Mean per-query seconds over `count` random pairs.
template <typename QueryFn>
double TimeQueries(size_t n, size_t count, uint64_t seed, QueryFn&& query) {
  Rng rng(seed);
  // Materialize pairs first so RNG cost is outside the timed region.
  std::vector<std::pair<Vertex, Vertex>> pairs(count);
  for (auto& p : pairs) {
    p.first = static_cast<Vertex>(rng.NextBounded(n));
    p.second = static_cast<Vertex>(rng.NextBounded(n));
  }
  uint64_t acc = 0;
  Stopwatch sw;
  for (const auto& [s, t] : pairs) acc += query(s, t).count;
  const double elapsed = sw.ElapsedSeconds();
  volatile uint64_t sink = acc;  // keep the loop observable
  (void)sink;
  return elapsed / static_cast<double>(count);
}

}  // namespace

int main() {
  using namespace dspc::bench;

  const size_t insertions = InsertionsPerGraph();
  const size_t deletions = DeletionsPerGraph();
  const size_t queries = QueriesPerGraph();

  std::printf("Figure 7: Distribution of Running Times\n\n");
  std::printf(
      "%-6s | %10s %10s %10s %10s | %10s %10s %10s %10s | %10s\n", "Graph",
      "inc p25", "inc med", "inc p75", "inc max", "dec p25", "dec med",
      "dec p75", "dec max", "L time");
  PrintRule(10);

  struct QueryRow {
    std::string name;
    double bibfs;
    double ori;
    double inc;
    double dec;
  };
  std::vector<QueryRow> query_rows;

  for (Dataset& d : MakeDatasets()) {
    double build_seconds = 0.0;
    SpcIndex index = BuildOrLoadIndex(d, &build_seconds);
    DynamicSpcIndex dyn(d.graph, std::move(index));
    const size_t n = dyn.graph().NumVertices();

    QueryRow row;
    row.name = d.name;
    {
      BiBfsCounter bibfs(dyn.graph());
      row.bibfs = TimeQueries(n, queries, 401, [&](Vertex s, Vertex t) {
        return bibfs.Query(s, t);
      });
    }
    row.ori = TimeQueries(
        n, queries, 401, [&](Vertex s, Vertex t) { return dyn.Query(s, t); });

    // Figure 7(a): per-insertion distribution.
    SampleStats inc_stats;
    for (const Edge& e : SampleNonEdges(dyn.graph(), insertions, 402)) {
      Stopwatch sw;
      dyn.InsertEdge(e.u, e.v);
      inc_stats.Add(sw.ElapsedSeconds());
    }
    row.inc = TimeQueries(
        n, queries, 403, [&](Vertex s, Vertex t) { return dyn.Query(s, t); });

    // Figure 7(b): per-deletion distribution.
    SampleStats dec_stats;
    for (const Edge& e : SampleEdges(dyn.graph(), deletions, 404)) {
      Stopwatch sw;
      dyn.RemoveEdge(e.u, e.v);
      dec_stats.Add(sw.ElapsedSeconds());
    }
    row.dec = TimeQueries(
        n, queries, 405, [&](Vertex s, Vertex t) { return dyn.Query(s, t); });
    query_rows.push_back(row);

    std::printf(
        "%-6s | %10s %10s %10s %10s | %10s %10s %10s %10s | %10s\n",
        d.name.c_str(), FormatSeconds(inc_stats.P25()).c_str(),
        FormatSeconds(inc_stats.Median()).c_str(),
        FormatSeconds(inc_stats.P75()).c_str(),
        FormatSeconds(inc_stats.Max()).c_str(),
        FormatSeconds(dec_stats.P25()).c_str(),
        FormatSeconds(dec_stats.Median()).c_str(),
        FormatSeconds(dec_stats.P75()).c_str(),
        FormatSeconds(dec_stats.Max()).c_str(),
        FormatSeconds(build_seconds).c_str());
    std::fflush(stdout);
  }

  std::printf("\nFigure 7(c): Query Time (avg over %zu random pairs)\n\n",
              queries);
  std::printf("%-6s %12s %12s %12s %12s %10s\n", "Graph", "BiBFS", "ori",
              "inc", "dec", "speedup");
  PrintRule(6);
  for (const QueryRow& row : query_rows) {
    std::printf("%-6s %12s %12s %12s %12s %9.0fx\n", row.name.c_str(),
                FormatSeconds(row.bibfs).c_str(),
                FormatSeconds(row.ori).c_str(), FormatSeconds(row.inc).c_str(),
                FormatSeconds(row.dec).c_str(),
                row.ori > 0 ? row.bibfs / row.ori : 0.0);
  }
  std::printf(
      "\nShape check vs paper: labeling beats BiBFS by orders of magnitude;\n"
      "ori/inc/dec labeling times are nearly identical (updates do not\n"
      "degrade the index).\n");
  return 0;
}
