// Table 3: statistics of the benchmark graphs. Prints the synthetic
// substitution suite (DESIGN.md §4) alongside the paper's original sizes
// for orientation.

#include <cstdio>

#include "bench_util.h"

namespace {

struct PaperRow {
  const char* name;
  const char* original;
  size_t n;
  size_t m;
};

// Paper Table 3 for reference.
constexpr PaperRow kPaper[] = {
    {"EUA", "email-EuAll", 265214, 418956},
    {"NTD", "NotreDame", 325729, 1090108},
    {"STA", "Stanford", 281903, 1992636},
    {"WCO", "WikiConflict", 118100, 2027871},
    {"GOO", "Google", 875713, 4322051},
    {"BKS", "BerkStan", 685231, 6649470},
    {"SKI", "Skitter", 1696415, 11095298},
    {"DBP", "DBpedia", 3966924, 12610982},
    {"WAR", "Wikilink War", 2093450, 26049249},
    {"IND", "Indochina-2004", 7414866, 150984819},
};

}  // namespace

int main() {
  using namespace dspc::bench;
  std::printf("Table 3: The Statistics of The Graphs (synthetic stand-ins)\n");
  std::printf("scale factor: %zu (DSPC_BENCH_SCALE=small|medium|large)\n\n",
              ScaleFactor());
  std::printf("%-6s %-24s %10s %10s   %12s %12s\n", "Graph", "Generator", "n",
              "m", "paper n", "paper m");
  PrintRule(7);
  for (const Dataset& d : MakeDatasets()) {
    size_t paper_n = 0;
    size_t paper_m = 0;
    for (const PaperRow& row : kPaper) {
      if (d.name == row.name) {
        paper_n = row.n;
        paper_m = row.m;
      }
    }
    std::printf("%-6s %-24s %10zu %10zu   %12zu %12zu\n", d.name.c_str(),
                d.generator.c_str(), d.graph.NumVertices(),
                d.graph.NumEdges(), paper_n, paper_m);
  }
  return 0;
}
