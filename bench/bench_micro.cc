// Micro benchmarks (google-benchmark): query latency of SpcQUERY (legacy
// merge-scan vs the FlatSpcIndex packed arena, single / batched /
// batched-parallel) vs the online baselines, HP-SPC build throughput,
// flat-snapshot construction, and single-update latency. Complements the
// table/figure harnesses with statistically-stable per-operation numbers
// on one mid-size dataset. Run with
//   --benchmark_out=BENCH_micro.json --benchmark_out_format=json
// for machine-readable output; bench_query_throughput emits the curated
// legacy-vs-flat JSON comparison.

#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "bench_util.h"
#include "dspc/baseline/bfs_counting.h"
#include "dspc/baseline/bibfs_counting.h"
#include "dspc/common/rng.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"

namespace {

using namespace dspc;

/// One shared mid-size graph + index (legacy and flat) for the query
/// benchmarks.
struct QueryFixture {
  QueryFixture()
      : graph(GenerateRmat(13, 57000, 103)),
        index(BuildSpcIndex(graph)),
        flat(index) {}

  /// A fixed random query workload over the fixture graph.
  std::vector<VertexPair> MakePairs(size_t count) const {
    Rng rng(1);
    std::vector<VertexPair> pairs(count);
    for (auto& p : pairs) {
      p.first = static_cast<Vertex>(rng.NextBounded(graph.NumVertices()));
      p.second = static_cast<Vertex>(rng.NextBounded(graph.NumVertices()));
    }
    return pairs;
  }

  Graph graph;
  SpcIndex index;
  FlatSpcIndex flat;
};

QueryFixture& Fixture() {
  static QueryFixture fixture;
  return fixture;
}

void BM_SpcQuery(benchmark::State& state) {
  const QueryFixture& f = Fixture();
  Rng rng(1);
  const size_t n = f.graph.NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<Vertex>(rng.NextBounded(n));
    const auto t = static_cast<Vertex>(rng.NextBounded(n));
    benchmark::DoNotOptimize(f.index.Query(s, t));
  }
}
BENCHMARK(BM_SpcQuery);

void BM_FlatQuery(benchmark::State& state) {
  const QueryFixture& f = Fixture();
  Rng rng(1);
  const size_t n = f.graph.NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<Vertex>(rng.NextBounded(n));
    const auto t = static_cast<Vertex>(rng.NextBounded(n));
    benchmark::DoNotOptimize(f.flat.Query(s, t));
  }
}
BENCHMARK(BM_FlatQuery);

void BM_FlatQueryBatch(benchmark::State& state) {
  const QueryFixture& f = Fixture();
  const std::vector<VertexPair> pairs = f.MakePairs(4096);
  std::vector<SpcResult> out(pairs.size());
  for (auto _ : state) {
    f.flat.QueryMany(pairs, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pairs.size()));
}
BENCHMARK(BM_FlatQueryBatch);

void BM_FlatQueryBatchParallel(benchmark::State& state) {
  const QueryFixture& f = Fixture();
  const std::vector<VertexPair> pairs = f.MakePairs(65536);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.flat.QueryManyParallel(pairs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pairs.size()));
}
BENCHMARK(BM_FlatQueryBatchParallel)->Unit(benchmark::kMillisecond);

void BM_FlatSnapshotBuild(benchmark::State& state) {
  const QueryFixture& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FlatSpcIndex(f.index));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(f.index.SizeStats().total_entries));
}
BENCHMARK(BM_FlatSnapshotBuild)->Unit(benchmark::kMillisecond);

void BM_BiBfsQuery(benchmark::State& state) {
  const QueryFixture& f = Fixture();
  BiBfsCounter counter(f.graph);
  Rng rng(1);
  const size_t n = f.graph.NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<Vertex>(rng.NextBounded(n));
    const auto t = static_cast<Vertex>(rng.NextBounded(n));
    benchmark::DoNotOptimize(counter.Query(s, t));
  }
}
BENCHMARK(BM_BiBfsQuery);

void BM_BfsPairQuery(benchmark::State& state) {
  const QueryFixture& f = Fixture();
  Rng rng(1);
  const size_t n = f.graph.NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<Vertex>(rng.NextBounded(n));
    const auto t = static_cast<Vertex>(rng.NextBounded(n));
    benchmark::DoNotOptimize(BfsCountPair(f.graph, s, t));
  }
}
BENCHMARK(BM_BfsPairQuery)->Iterations(50);

void BM_HpSpcBuild(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const Graph g = GenerateBarabasiAlbert(n, 2, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSpcIndex(g));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumEdges()));
}
BENCHMARK(BM_HpSpcBuild)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_IncSpcInsert(benchmark::State& state) {
  const QueryFixture& f = Fixture();
  DynamicSpcIndex dyn(f.graph, f.index);
  const std::vector<Edge> pool = SampleNonEdges(f.graph, 4096, 11);
  size_t i = 0;
  for (auto _ : state) {
    const Edge& e = pool[i++ % pool.size()];
    // Alternate insert/delete of the same fresh edge keeps the graph
    // stable while exercising IncSPC every iteration; pause the timer for
    // the compensating deletion.
    benchmark::DoNotOptimize(dyn.InsertEdge(e.u, e.v));
    state.PauseTiming();
    dyn.RemoveEdge(e.u, e.v);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_IncSpcInsert)->Iterations(30)->Unit(benchmark::kMillisecond);

void BM_DecSpcRemove(benchmark::State& state) {
  const QueryFixture& f = Fixture();
  DynamicSpcIndex dyn(f.graph, f.index);
  const std::vector<Edge> pool = SampleEdges(f.graph, 4096, 12);
  size_t i = 0;
  for (auto _ : state) {
    const Edge& e = pool[i++ % pool.size()];
    benchmark::DoNotOptimize(dyn.RemoveEdge(e.u, e.v));
    state.PauseTiming();
    dyn.InsertEdge(e.u, e.v);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_DecSpcRemove)->Iterations(10)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
