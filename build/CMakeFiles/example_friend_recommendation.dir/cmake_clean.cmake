file(REMOVE_RECURSE
  "CMakeFiles/example_friend_recommendation.dir/examples/friend_recommendation.cpp.o"
  "CMakeFiles/example_friend_recommendation.dir/examples/friend_recommendation.cpp.o.d"
  "example_friend_recommendation"
  "example_friend_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_friend_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
