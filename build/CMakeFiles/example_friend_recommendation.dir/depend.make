# Empty dependencies file for example_friend_recommendation.
# This may be replaced when dependencies are built.
