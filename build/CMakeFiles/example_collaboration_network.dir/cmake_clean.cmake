file(REMOVE_RECURSE
  "CMakeFiles/example_collaboration_network.dir/examples/collaboration_network.cpp.o"
  "CMakeFiles/example_collaboration_network.dir/examples/collaboration_network.cpp.o.d"
  "example_collaboration_network"
  "example_collaboration_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_collaboration_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
