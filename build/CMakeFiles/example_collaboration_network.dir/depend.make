# Empty dependencies file for example_collaboration_network.
# This may be replaced when dependencies are built.
