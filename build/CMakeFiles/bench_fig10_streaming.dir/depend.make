# Empty dependencies file for bench_fig10_streaming.
# This may be replaced when dependencies are built.
