file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_streaming.dir/bench/bench_fig10_streaming.cc.o"
  "CMakeFiles/bench_fig10_streaming.dir/bench/bench_fig10_streaming.cc.o.d"
  "bench_fig10_streaming"
  "bench_fig10_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
