# Empty dependencies file for example_group_betweenness.
# This may be replaced when dependencies are built.
