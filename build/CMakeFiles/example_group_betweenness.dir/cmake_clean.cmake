file(REMOVE_RECURSE
  "CMakeFiles/example_group_betweenness.dir/examples/group_betweenness.cpp.o"
  "CMakeFiles/example_group_betweenness.dir/examples/group_betweenness.cpp.o.d"
  "example_group_betweenness"
  "example_group_betweenness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_group_betweenness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
