# Empty dependencies file for dspc_bench_util.
# This may be replaced when dependencies are built.
