file(REMOVE_RECURSE
  "CMakeFiles/dspc_bench_util.dir/bench/bench_util.cc.o"
  "CMakeFiles/dspc_bench_util.dir/bench/bench_util.cc.o.d"
  "libdspc_bench_util.a"
  "libdspc_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspc_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
