file(REMOVE_RECURSE
  "libdspc_bench_util.a"
)
