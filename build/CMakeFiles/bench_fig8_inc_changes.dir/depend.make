# Empty dependencies file for bench_fig8_inc_changes.
# This may be replaced when dependencies are built.
