
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cc" "CMakeFiles/dspc_tests.dir/tests/apps_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/apps_test.cc.o.d"
  "/root/repo/tests/baseline_test.cc" "CMakeFiles/dspc_tests.dir/tests/baseline_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/baseline_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "CMakeFiles/dspc_tests.dir/tests/common_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/common_test.cc.o.d"
  "/root/repo/tests/directed_spc_test.cc" "CMakeFiles/dspc_tests.dir/tests/directed_spc_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/directed_spc_test.cc.o.d"
  "/root/repo/tests/dynamic_facade_test.cc" "CMakeFiles/dspc_tests.dir/tests/dynamic_facade_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/dynamic_facade_test.cc.o.d"
  "/root/repo/tests/dynamic_property_test.cc" "CMakeFiles/dspc_tests.dir/tests/dynamic_property_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/dynamic_property_test.cc.o.d"
  "/root/repo/tests/flat_spc_index_test.cc" "CMakeFiles/dspc_tests.dir/tests/flat_spc_index_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/flat_spc_index_test.cc.o.d"
  "/root/repo/tests/generators_test.cc" "CMakeFiles/dspc_tests.dir/tests/generators_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/generators_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "CMakeFiles/dspc_tests.dir/tests/graph_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/graph_test.cc.o.d"
  "/root/repo/tests/hp_spc_test.cc" "CMakeFiles/dspc_tests.dir/tests/hp_spc_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/hp_spc_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "CMakeFiles/dspc_tests.dir/tests/io_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/io_test.cc.o.d"
  "/root/repo/tests/paper_examples_test.cc" "CMakeFiles/dspc_tests.dir/tests/paper_examples_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/paper_examples_test.cc.o.d"
  "/root/repo/tests/smoke_test.cc" "CMakeFiles/dspc_tests.dir/tests/smoke_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/smoke_test.cc.o.d"
  "/root/repo/tests/spc_index_test.cc" "CMakeFiles/dspc_tests.dir/tests/spc_index_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/spc_index_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "CMakeFiles/dspc_tests.dir/tests/stress_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/stress_test.cc.o.d"
  "/root/repo/tests/update_stream_test.cc" "CMakeFiles/dspc_tests.dir/tests/update_stream_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/update_stream_test.cc.o.d"
  "/root/repo/tests/weighted_spc_test.cc" "CMakeFiles/dspc_tests.dir/tests/weighted_spc_test.cc.o" "gcc" "CMakeFiles/dspc_tests.dir/tests/weighted_spc_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/dspc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
