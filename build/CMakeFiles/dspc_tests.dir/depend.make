# Empty dependencies file for dspc_tests.
# This may be replaced when dependencies are built.
