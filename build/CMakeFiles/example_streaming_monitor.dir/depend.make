# Empty dependencies file for example_streaming_monitor.
# This may be replaced when dependencies are built.
