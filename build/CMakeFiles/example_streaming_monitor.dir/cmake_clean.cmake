file(REMOVE_RECURSE
  "CMakeFiles/example_streaming_monitor.dir/examples/streaming_monitor.cpp.o"
  "CMakeFiles/example_streaming_monitor.dir/examples/streaming_monitor.cpp.o.d"
  "example_streaming_monitor"
  "example_streaming_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_streaming_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
