file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_dec_changes.dir/bench/bench_fig9_dec_changes.cc.o"
  "CMakeFiles/bench_fig9_dec_changes.dir/bench/bench_fig9_dec_changes.cc.o.d"
  "bench_fig9_dec_changes"
  "bench_fig9_dec_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dec_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
