# Empty dependencies file for bench_fig9_dec_changes.
# This may be replaced when dependencies are built.
