file(REMOVE_RECURSE
  "CMakeFiles/bench_query_throughput.dir/bench/bench_query_throughput.cc.o"
  "CMakeFiles/bench_query_throughput.dir/bench/bench_query_throughput.cc.o.d"
  "bench_query_throughput"
  "bench_query_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
