# Empty dependencies file for bench_query_throughput.
# This may be replaced when dependencies are built.
