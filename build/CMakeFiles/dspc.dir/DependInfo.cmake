
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dspc/apps/betweenness.cc" "CMakeFiles/dspc.dir/src/dspc/apps/betweenness.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/apps/betweenness.cc.o.d"
  "/root/repo/src/dspc/apps/recommendation.cc" "CMakeFiles/dspc.dir/src/dspc/apps/recommendation.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/apps/recommendation.cc.o.d"
  "/root/repo/src/dspc/baseline/bfs_counting.cc" "CMakeFiles/dspc.dir/src/dspc/baseline/bfs_counting.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/baseline/bfs_counting.cc.o.d"
  "/root/repo/src/dspc/baseline/bibfs_counting.cc" "CMakeFiles/dspc.dir/src/dspc/baseline/bibfs_counting.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/baseline/bibfs_counting.cc.o.d"
  "/root/repo/src/dspc/baseline/dijkstra_counting.cc" "CMakeFiles/dspc.dir/src/dspc/baseline/dijkstra_counting.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/baseline/dijkstra_counting.cc.o.d"
  "/root/repo/src/dspc/common/binary_io.cc" "CMakeFiles/dspc.dir/src/dspc/common/binary_io.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/common/binary_io.cc.o.d"
  "/root/repo/src/dspc/common/label_codec.cc" "CMakeFiles/dspc.dir/src/dspc/common/label_codec.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/common/label_codec.cc.o.d"
  "/root/repo/src/dspc/common/stats.cc" "CMakeFiles/dspc.dir/src/dspc/common/stats.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/common/stats.cc.o.d"
  "/root/repo/src/dspc/common/status.cc" "CMakeFiles/dspc.dir/src/dspc/common/status.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/common/status.cc.o.d"
  "/root/repo/src/dspc/core/dec_spc.cc" "CMakeFiles/dspc.dir/src/dspc/core/dec_spc.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/core/dec_spc.cc.o.d"
  "/root/repo/src/dspc/core/directed_spc.cc" "CMakeFiles/dspc.dir/src/dspc/core/directed_spc.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/core/directed_spc.cc.o.d"
  "/root/repo/src/dspc/core/dynamic_spc.cc" "CMakeFiles/dspc.dir/src/dspc/core/dynamic_spc.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/core/dynamic_spc.cc.o.d"
  "/root/repo/src/dspc/core/flat_spc_index.cc" "CMakeFiles/dspc.dir/src/dspc/core/flat_spc_index.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/core/flat_spc_index.cc.o.d"
  "/root/repo/src/dspc/core/hp_spc.cc" "CMakeFiles/dspc.dir/src/dspc/core/hp_spc.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/core/hp_spc.cc.o.d"
  "/root/repo/src/dspc/core/inc_spc.cc" "CMakeFiles/dspc.dir/src/dspc/core/inc_spc.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/core/inc_spc.cc.o.d"
  "/root/repo/src/dspc/core/spc_index.cc" "CMakeFiles/dspc.dir/src/dspc/core/spc_index.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/core/spc_index.cc.o.d"
  "/root/repo/src/dspc/core/weighted_spc.cc" "CMakeFiles/dspc.dir/src/dspc/core/weighted_spc.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/core/weighted_spc.cc.o.d"
  "/root/repo/src/dspc/graph/digraph.cc" "CMakeFiles/dspc.dir/src/dspc/graph/digraph.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/graph/digraph.cc.o.d"
  "/root/repo/src/dspc/graph/generators.cc" "CMakeFiles/dspc.dir/src/dspc/graph/generators.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/graph/generators.cc.o.d"
  "/root/repo/src/dspc/graph/graph.cc" "CMakeFiles/dspc.dir/src/dspc/graph/graph.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/graph/graph.cc.o.d"
  "/root/repo/src/dspc/graph/io.cc" "CMakeFiles/dspc.dir/src/dspc/graph/io.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/graph/io.cc.o.d"
  "/root/repo/src/dspc/graph/ordering.cc" "CMakeFiles/dspc.dir/src/dspc/graph/ordering.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/graph/ordering.cc.o.d"
  "/root/repo/src/dspc/graph/update_stream.cc" "CMakeFiles/dspc.dir/src/dspc/graph/update_stream.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/graph/update_stream.cc.o.d"
  "/root/repo/src/dspc/graph/weighted_graph.cc" "CMakeFiles/dspc.dir/src/dspc/graph/weighted_graph.cc.o" "gcc" "CMakeFiles/dspc.dir/src/dspc/graph/weighted_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
