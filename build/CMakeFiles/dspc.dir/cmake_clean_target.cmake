file(REMOVE_RECURSE
  "libdspc.a"
)
