# Empty dependencies file for dspc.
# This may be replaced when dependencies are built.
